"""The paper's prototype system, ported onto the mini-Prolog engine.

Two entry points:

- :func:`restaurant_prototype` consults (a cleaned-up transcription of)
  the Appendix program verbatim — same facts, same ILFD rules with cuts,
  same NULL-default assertions, same ``non_null_eq`` and verification
  predicates — and reproduces the Section-6 session: sound extended key
  ``{Name, Spec, Cui}`` accepted, unsound key ``{Name}`` warned about,
  and the matching/integrated table printouts.

- :class:`PrototypeSystem` generates the same encoding for *any* pair of
  relations plus ILFD set (the role the paper's little C helper
  ``getkey`` played for the matching-table rule), which lets the scaling
  benches run the Prolog path against the native pipeline on synthetic
  workloads.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.prolog.engine import Clause, Database, PrologEngine
from repro.prolog.errors import PrologError
from repro.prolog.terms import Atom, Struct, Term, Var
from repro.relational.formatting import format_rows
from repro.relational.nulls import is_null
from repro.relational.relation import Relation

VERIFIED_MESSAGE = "Message: The extended key is verified."
UNSOUND_MESSAGE = "Message: The extended key causes unsound matching result."

_NULL_ATOM = Atom("null")


def _render(term: Term) -> str:
    """Atom values render as their bare name (no quoting)."""
    if isinstance(term, Atom):
        return term.name
    return str(term)


def _default_mangle(value: Any) -> str:
    """Default value-to-atom conversion: the raw text, quoted if needed."""
    return str(value)


class PrototypeSystem:
    """A Prolog-encoded entity-identification system for two relations.

    Parameters
    ----------
    r, s:
        Source relations in the *unified* namespace.
    ilfds:
        ILFDs over unified attribute names (encoded as rules with cuts on
        both the R and the S side).
    aliases:
        Optional attribute abbreviations for predicate names (the
        Appendix writes ``r_cui`` for R.cuisine); unified name → alias.
    mangle:
        Value-to-atom conversion (the Appendix lowercases and rewrites
        punctuation by hand; pass a mapping-backed function for verbatim
        output).
    """

    def __init__(
        self,
        r: Relation,
        s: Relation,
        ilfds: ILFDSet | Iterable[ILFD] = (),
        *,
        candidates: Optional[Sequence[str]] = None,
        aliases: Optional[Mapping[str, str]] = None,
        mangle: Callable[[Any], str] = _default_mangle,
    ) -> None:
        self._r = r
        self._s = s
        self._ilfds = ilfds if isinstance(ilfds, ILFDSet) else ILFDSet(ilfds)
        self._aliases = dict(aliases or {})
        self._mangle = mangle
        self._candidates = list(candidates) if candidates is not None else None
        self.database = Database()
        self.engine = PrologEngine(self.database)
        self._extkey: Tuple[str, ...] = ()
        self._load()

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    def _alias(self, attribute: str) -> str:
        return self._aliases.get(attribute, attribute)

    def _pred(self, side: str, attribute: str) -> str:
        return f"{side}_{self._alias(attribute)}"

    def _value_atom(self, value: Any) -> Term:
        if is_null(value):
            return _NULL_ATOM
        return Atom(self._mangle(value))

    # ------------------------------------------------------------------
    # Program generation
    # ------------------------------------------------------------------
    @property
    def r_attributes(self) -> Tuple[str, ...]:
        """R's unified attribute names, in schema order."""
        return self._r.schema.names

    @property
    def s_attributes(self) -> Tuple[str, ...]:
        """S's unified attribute names, in schema order."""
        return self._s.schema.names

    @property
    def r_key(self) -> Tuple[str, ...]:
        """R's primary-key attributes, in schema order."""
        key = self._r.schema.primary_key
        return tuple(a for a in self._r.schema.names if a in key)

    @property
    def s_key(self) -> Tuple[str, ...]:
        """S's primary-key attributes, in schema order."""
        key = self._s.schema.primary_key
        return tuple(a for a in self._s.schema.names if a in key)

    def candidate_attributes(self) -> List[str]:
        """Attributes available for the extended key.

        The paper assumes this list "has been supplied a priori" (the
        Name/Spec/Cui menu of the ``setup_extkey`` listing); pass
        ``candidates=`` to supply it.  Without one, every attribute each
        side either stores or can ILFD-derive qualifies.
        """
        if self._candidates is not None:
            return list(self._candidates)
        derivable = {
            cond.attribute for f in self._ilfds for cond in f.consequent
        }
        out: List[str] = []
        for attribute in dict.fromkeys(
            list(self.r_attributes) + list(self.s_attributes)
        ):
            r_ok = attribute in self._r.schema or attribute in derivable
            s_ok = attribute in self._s.schema or attribute in derivable
            if r_ok and s_ok:
                out.append(attribute)
        return out

    def _load(self) -> None:
        self._assert_facts("r", self._r)
        self._assert_facts("s", self._s)
        self._assert_ilfd_rules()
        self._assert_null_defaults()
        self._assert_views()
        self.database.consult(
            """
            non_null_eq(A, B) :- not A=null, not B=null, A=B.
            length([], 0).
            length([_X|Xs], N+1) :- length(Xs, N).
            if_then_else(P, Q, _R) :- P, !, Q.
            if_then_else(_P, _Q, R) :- R.
            """
        )

    def _assert_facts(self, side: str, relation: Relation) -> None:
        for index, row in enumerate(relation, start=1):
            tuple_id = Atom(f"{side}{index}")
            self.database.assertz(
                Clause(Struct(f"{side}_id", (tuple_id,)))
            )
            for attribute in relation.schema.names:
                value = row[attribute]
                if is_null(value):
                    continue
                self.database.assertz(
                    Clause(
                        Struct(
                            self._pred(side, attribute),
                            (tuple_id, self._value_atom(value)),
                        )
                    )
                )

    def _always_stored(self, side: str, attribute: str) -> bool:
        relation = self._r if side == "r" else self._s
        return attribute in relation.schema and not any(
            is_null(row[attribute]) for row in relation
        )

    def _assert_ilfd_rules(self) -> None:
        """One rule per ILFD and side, each ending in a cut.

        ``s_cui(Sid, chinese) :- s_spec(Sid, hunan), !.``

        Following the Appendix, rules are only generated for attributes
        the side does not already store in full: a rule alongside complete
        facts would re-derive stored values on backtracking and inflate
        the ``bagof`` count the soundness check relies on.
        """
        for side in ("r", "s"):
            identifier = Var("Id")
            for ilfd in self._ilfds:
                for part in ilfd.split():
                    (consequent,) = part.consequent
                    if self._always_stored(side, consequent.attribute):
                        continue
                    head = Struct(
                        self._pred(side, consequent.attribute),
                        (identifier, self._value_atom(consequent.value)),
                    )
                    body: List[Term] = [
                        Struct(
                            self._pred(side, cond.attribute),
                            (identifier, self._value_atom(cond.value)),
                        )
                        for cond in sorted(part.antecedent)
                    ]
                    body.append(Atom("!"))
                    self.database.assertz(Clause(head, tuple(body)))

    def _assert_null_defaults(self) -> None:
        """NULL defaults, asserted after all facts and ILFD rules.

        Exactly the prototype's trick: "we implemented the default NULL
        values by asserting them only after all ILFDs have failed to
        assign the non-NULL values."  A default is only generated for
        attributes that can be missing on that side (absent from the
        schema, or present with NULLs) so that always-stored attributes
        ground the tuple id.
        """
        derivable = {
            cond.attribute for f in self._ilfds for cond in f.consequent
        }
        for side, relation in (("r", self._r), ("s", self._s)):
            present = set(relation.schema.names)
            relevant = sorted(present | derivable)
            for attribute in relevant:
                always_stored = attribute in present and not any(
                    is_null(row[attribute]) for row in relation
                )
                if always_stored:
                    continue
                self.database.assertz(
                    Clause(
                        Struct(
                            self._pred(side, attribute),
                            (Var("_Id"), _NULL_ATOM),
                        ),
                        (Struct(f"{side}_id", (Var("_Id"),)),),
                    )
                )

    def _view_attributes(self, side: str) -> List[str]:
        """The rr/ss view columns: stored attributes plus derivable
        *candidate* attributes (the Appendix's rr has no r_cty column even
        though r_cty is derivable — county was not a candidate)."""
        relation = self._r if side == "r" else self._s
        candidates = self.candidate_attributes()
        derivable = {
            cond.attribute for f in self._ilfds for cond in f.consequent
        }
        ordered = list(relation.schema.names)
        ordered.extend(
            a
            for a in candidates
            if a in derivable and a not in relation.schema
        )
        return ordered

    def _assert_views(self) -> None:
        """The extended-relation views rr/ss over all fetchable attributes."""
        for side in ("r", "s"):
            attributes = self._view_attributes(side)
            identifier = Var("Id")
            args: List[Term] = [identifier]
            body: List[Term] = [Struct(f"{side}_id", (identifier,))]
            for attribute in attributes:
                variable = Var("V_" + self._alias(attribute))
                args.append(variable)
                body.append(
                    Struct(self._pred(side, attribute), (identifier, variable))
                )
            head = Struct(f"{side}{side}", tuple(args))
            self.database.assertz(Clause(head, tuple(body)))

    # ------------------------------------------------------------------
    # setup_extkey (the getkey substitute) and verification
    # ------------------------------------------------------------------
    def setup_extkey(self, attributes: Sequence[str]) -> str:
        """Install the matching-table rule for the chosen extended key.

        Regenerates ``matchtable/(|K_R|+|K_S|)`` — head variables are the
        two keys' values, body fetches every candidate attribute of both
        tuples and requires ``non_null_eq`` on each selected attribute —
        then verifies soundness and returns the prototype's message.
        """
        selection = list(attributes)
        candidates = self.candidate_attributes()
        unknown = [a for a in selection if a not in candidates]
        if unknown:
            raise PrologError(
                f"extended key attributes {unknown} are not candidates "
                f"(candidates: {candidates})"
            )
        arity = len(self.r_key) + len(self.s_key)
        self.database.retract_all("matchtable", arity)
        self.database.retract_all("matched_R_keys", len(self.r_key))
        self.database.retract_all("matched_S_keys", len(self.s_key))
        self.database.retract_all("correct", 0)

        r_id, s_id = Var("R"), Var("S")
        fetch: List[Term] = [
            Struct("r_id", (r_id,)),
            Struct("s_id", (s_id,)),
        ]
        r_vals: Dict[str, Var] = {}
        s_vals: Dict[str, Var] = {}
        for attribute in dict.fromkeys(list(self.r_key) + list(selection)):
            if attribute in self._r.schema or attribute in candidates:
                var = Var("R_" + self._alias(attribute))
                r_vals[attribute] = var
                fetch.append(
                    Struct(self._pred("r", attribute), (r_id, var))
                )
        for attribute in dict.fromkeys(list(self.s_key) + list(selection)):
            if attribute in self._s.schema or attribute in candidates:
                var = Var("S_" + self._alias(attribute))
                s_vals[attribute] = var
                fetch.append(
                    Struct(self._pred("s", attribute), (s_id, var))
                )
        conditions: List[Term] = [
            Struct("non_null_eq", (r_vals[a], s_vals[a])) for a in selection
        ]
        head_args = [r_vals[a] for a in self.r_key] + [
            s_vals[a] for a in self.s_key
        ]
        head = Struct("matchtable", tuple(head_args))
        self.database.assertz(Clause(head, tuple(fetch + conditions)))

        self._assert_verification(arity)
        self._extkey = tuple(selection)
        return self.verify()

    def _assert_verification(self, arity: int) -> None:
        """The ``correct`` predicate: bagof vs setof cardinalities."""
        r_vars = [Var(f"K{i}") for i in range(len(self.r_key))]
        s_vars = [Var(f"L{i}") for i in range(len(self.s_key))]
        all_vars = r_vars + s_vars
        self.database.assertz(
            Clause(
                Struct("matched_R_keys", tuple(r_vars)),
                (Struct("matchtable", tuple(all_vars)),),
            )
        )
        self.database.assertz(
            Clause(
                Struct("matched_S_keys", tuple(s_vars)),
                (Struct("matchtable", tuple(all_vars)),),
            )
        )
        self.database.consult(
            """
            correct :- bagof(Ks, matched_R_keys_list(Ks), M1),
                       setof(Ks2, matched_R_keys_list(Ks2), M2),
                       bagof(Ls, matched_S_keys_list(Ls), M3),
                       setof(Ls2, matched_S_keys_list(Ls2), M4),
                       length(M1, N1), length(M2, N2),
                       length(M3, N3), length(M4, N4),
                       N1 = N2, N3 = N4.
            """
        )
        from repro.prolog.terms import make_list

        r_vars2 = [Var(f"K{i}") for i in range(len(self.r_key))]
        s_vars2 = [Var(f"L{i}") for i in range(len(self.s_key))]
        self.database.retract_all("matched_R_keys_list", 1)
        self.database.retract_all("matched_S_keys_list", 1)
        self.database.assertz(
            Clause(
                Struct("matched_R_keys_list", (make_list(r_vars2),)),
                (Struct("matched_R_keys", tuple(r_vars2)),),
            )
        )
        self.database.assertz(
            Clause(
                Struct("matched_S_keys_list", (make_list(s_vars2),)),
                (Struct("matched_S_keys", tuple(s_vars2)),),
            )
        )

    def verify(self) -> str:
        """Run the soundness check; returns the prototype's message."""
        if not self._extkey:
            raise PrologError("setup_extkey has not been run")
        if not self.matchtable_rows():
            # bagof fails on an empty matchtable; an empty table trivially
            # satisfies uniqueness, so report it verified.
            return VERIFIED_MESSAGE
        return VERIFIED_MESSAGE if self.engine.succeeds("correct") else UNSOUND_MESSAGE

    # ------------------------------------------------------------------
    # Result extraction and printing
    # ------------------------------------------------------------------
    def matchtable_rows(self) -> List[Dict[str, str]]:
        """Matching-table rows as dicts keyed ``r_<attr>`` / ``s_<attr>``."""
        if not self._extkey:
            raise PrologError("setup_extkey has not been run")
        r_cols = [f"r_{self._alias(a)}" for a in self.r_key]
        s_cols = [f"s_{self._alias(a)}" for a in self.s_key]
        variables = [Var(f"C{i}") for i in range(len(r_cols) + len(s_cols))]
        goal = Struct("matchtable", tuple(variables))
        out: List[Dict[str, str]] = []
        seen: set = set()
        for subst in self.engine.solve([goal]):
            from repro.prolog.engine import resolve

            values = tuple(_render(resolve(v, subst)) for v in variables)
            if values in seen:
                continue
            seen.add(values)
            out.append(dict(zip(r_cols + s_cols, values)))
        out.sort(key=lambda row: tuple(row.values()))
        return out

    def integrated_rows(self) -> List[Dict[str, str]]:
        """Integrated-table rows (matched ∪ unmatched-R ∪ unmatched-S)."""
        if not self._extkey:
            raise PrologError("setup_extkey has not been run")
        r_attrs = self._view_attributes("r")
        s_attrs = self._view_attributes("s")
        r_cols = [f"r_{self._alias(a)}" for a in r_attrs]
        s_cols = [f"s_{self._alias(a)}" for a in s_attrs]

        rr_rows = self._view_rows("r", r_attrs)
        ss_rows = self._view_rows("s", s_attrs)
        match_rows = self.matchtable_rows()

        def r_key_of(view_row: Dict[str, str]) -> Tuple[str, ...]:
            return tuple(view_row[f"r_{self._alias(a)}"] for a in self.r_key)

        def s_key_of(view_row: Dict[str, str]) -> Tuple[str, ...]:
            return tuple(view_row[f"s_{self._alias(a)}"] for a in self.s_key)

        matched_r = {
            tuple(m[f"r_{self._alias(a)}"] for a in self.r_key) for m in match_rows
        }
        matched_s = {
            tuple(m[f"s_{self._alias(a)}"] for a in self.s_key) for m in match_rows
        }
        out: List[Dict[str, str]] = []
        for m in match_rows:
            r_side = next(
                row
                for row in rr_rows
                if r_key_of(row) == tuple(m[f"r_{self._alias(a)}"] for a in self.r_key)
            )
            s_side = next(
                row
                for row in ss_rows
                if s_key_of(row) == tuple(m[f"s_{self._alias(a)}"] for a in self.s_key)
            )
            combined = dict(r_side)
            combined.update(s_side)
            out.append(combined)
        for row in rr_rows:
            if r_key_of(row) not in matched_r:
                combined = dict(row)
                combined.update({c: "null" for c in s_cols})
                out.append(combined)
        for row in ss_rows:
            if s_key_of(row) not in matched_s:
                combined = {c: "null" for c in r_cols}
                combined.update(row)
                out.append(combined)
        out.sort(key=lambda r: tuple(r[c] for c in r_cols + s_cols))
        return out

    def _view_rows(self, side: str, attributes: List[str]) -> List[Dict[str, str]]:
        identifier = Var("Id")
        variables = [Var(f"A{i}") for i in range(len(attributes))]
        goal = Struct(f"{side}{side}", tuple([identifier] + variables))
        from repro.prolog.engine import resolve

        out: List[Dict[str, str]] = []
        seen: set = set()
        for subst in self.engine.solve([goal]):
            key = _render(resolve(identifier, subst))
            if key in seen:
                continue  # cut-free views may re-derive the same tuple
            seen.add(key)
            out.append(
                {
                    f"{side}_{self._alias(a)}": _render(resolve(v, subst))
                    for a, v in zip(attributes, variables)
                }
            )
        return out

    def print_matchtable(self) -> str:
        """The Section-6 ``print_matchtable`` output."""
        rows = self.matchtable_rows()
        header = [f"r_{self._alias(a)}" for a in self.r_key] + [
            f"s_{self._alias(a)}" for a in self.s_key
        ]
        return format_rows(header, rows, title="matching table")

    def print_integ_table(self) -> str:
        """The Section-6 ``print_integ_table`` output."""
        rows = self.integrated_rows()
        header = self.integrated_header()
        return format_rows(header, rows, title="integrated table")

    def integrated_header(self) -> List[str]:
        """Column order of the integrated printout.

        Follows the Section-6 layout (``r_name r_cui r_spec s_name s_cui
        s_spec r_str s_cty``): each side's candidate attributes first, in
        candidate-list order, then each side's leftovers in schema order.
        """
        candidates = self.candidate_attributes()
        r_attrs = self._view_attributes("r")
        s_attrs = self._view_attributes("s")
        r_first = [f"r_{self._alias(a)}" for a in candidates if a in r_attrs]
        s_first = [f"s_{self._alias(a)}" for a in candidates if a in s_attrs]
        r_rest = [f"r_{self._alias(a)}" for a in r_attrs if a not in candidates]
        s_rest = [f"s_{self._alias(a)}" for a in s_attrs if a not in candidates]
        return r_first + s_first + r_rest + s_rest


def restaurant_prototype() -> PrototypeSystem:
    """The Appendix program: Example 3's restaurants, atoms and all."""
    from repro.relational.attribute import string_attribute as _sa
    from repro.relational.schema import Schema

    mangling = {
        "TwinCities": "twincities",
        "It'sGreek": "itsgreek",
        "Anjuman": "anjuman",
        "VillageWok": "villagewok",
        "Chinese": "chinese",
        "Indian": "indian",
        "Greek": "greek",
        "Co.B2": "co_B2",
        "Co.B3": "co_B3",
        "FrontAve.": "front_ave",
        "LeSalleAve.": "le_salle_ave",
        "Wash.Ave.": "wash_ave",
        "Hunan": "hunan",
        "Sichuan": "sichuan",
        "Gyros": "gyros",
        "Mughalai": "mughalai",
        "Roseville": "roseville",
        "Hennepin": "hennepin",
        "Ramsey": "ramsey",
        "Mpls.": "minneapolis",
    }

    r = Relation(
        Schema(
            [_sa("name"), _sa("cuisine"), _sa("street")],
            keys=[("name", "cuisine")],
        ),
        [
            ("TwinCities", "Chinese", "Co.B2"),
            ("TwinCities", "Indian", "Co.B3"),
            ("It'sGreek", "Greek", "FrontAve."),
            ("Anjuman", "Indian", "LeSalleAve."),
            ("VillageWok", "Chinese", "Wash.Ave."),
        ],
        name="R",
    )
    s = Relation(
        Schema(
            [_sa("name"), _sa("speciality"), _sa("county")],
            keys=[("name", "speciality")],
        ),
        [
            ("TwinCities", "Hunan", "Roseville"),
            ("TwinCities", "Sichuan", "Hennepin"),
            ("It'sGreek", "Gyros", "Ramsey"),
            ("Anjuman", "Mughalai", "Mpls."),
        ],
        name="S",
    )
    ilfds = [
        ILFD({"speciality": "Hunan"}, {"cuisine": "Chinese"}, name="I1"),
        ILFD({"speciality": "Sichuan"}, {"cuisine": "Chinese"}, name="I2"),
        ILFD({"speciality": "Gyros"}, {"cuisine": "Greek"}, name="I3"),
        ILFD({"speciality": "Mughalai"}, {"cuisine": "Indian"}, name="I4"),
        ILFD(
            {"name": "TwinCities", "street": "Co.B2"},
            {"speciality": "Hunan"},
            name="I5",
        ),
        ILFD(
            {"name": "Anjuman", "street": "LeSalleAve."},
            {"speciality": "Mughalai"},
            name="I6",
        ),
        ILFD({"street": "FrontAve."}, {"county": "Ramsey"}, name="I7"),
        ILFD(
            {"name": "It'sGreek", "county": "Ramsey"},
            {"speciality": "Gyros"},
            name="I8",
        ),
    ]
    aliases = {
        "cuisine": "cui",
        "street": "str",
        "speciality": "spec",
        "county": "cty",
    }
    return PrototypeSystem(
        r,
        s,
        ilfds,
        candidates=["name", "cuisine", "speciality"],
        aliases=aliases,
        mangle=lambda value: mangling.get(str(value), str(value)),
    )

"""Overload protection: token buckets, admission control, circuit breakers.

The serving degradation ladder (deadline → retry → stale → 503) reacts
to *replica* failures; nothing in it protects the server itself from
traffic it cannot absorb.  This module adds the missing layer, shared by
``repro serve`` and anything else that fronts the store:

- :class:`TokenBucket` — a refilling rate limiter with an injectable
  clock (tests tick a fake clock; no wall-time in assertions).
- :class:`AdmissionController` — sits *in front* of request handling: a
  bounded in-flight queue with explicit backpressure plus one token
  bucket per endpoint class (reads vs writes).  A request that cannot be
  admitted is refused immediately with
  :class:`~repro.resilience.errors.OverloadShedError` carrying the HTTP
  status (429 out-of-tokens / 503 queue-full) and a ``Retry-After``
  hint, **before** any work is queued for it — which is what keeps the
  p99 of admitted requests bounded at 2× capacity instead of letting
  every request rot in an unbounded queue.
- :class:`CircuitBreaker` — the classic closed → open → half-open
  machine around a flaky dependency (the replica pool, the writer
  thread).  Repeated failures open it; while open every call is refused
  in O(1) with :class:`~repro.resilience.errors.CircuitOpenError`; after
  a cooldown drawn from a *seeded* RNG (deterministic probe schedule,
  same seed → same schedule) one probe is let through half-open, and its
  verdict closes or re-opens the circuit.

Everything here is thread-safe, allocation-light on the happy path, and
counts into the shared :class:`~repro.observability.MetricsRegistry`
(``overload.*`` / ``breaker.*``) when a tracer is attached.  See
``docs/RESILIENCE.md`` for the state diagram and the serving contract.
"""

from __future__ import annotations

import threading
import time
from random import Random
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import CircuitOpenError, OverloadShedError

__all__ = [
    "TokenBucket",
    "AdmissionController",
    "AdmissionTicket",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class TokenBucket:
    """A thread-safe token bucket: *rate* tokens/second, *burst* capacity.

    ``rate <= 0`` disables limiting (every acquire succeeds).  The clock
    is injectable so tests drive time explicitly; production uses
    ``time.monotonic``.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst is not None and burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst) if burst is not None else max(self._rate, 1.0)
        self._clock = clock
        self._tokens = self._burst
        self._updated = clock()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        """Tokens added per second (``<= 0`` = unlimited)."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity (maximum tokens banked while idle)."""
        return self._burst

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
            self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """``(True, 0.0)`` when *tokens* were taken, else ``(False, wait)``.

        *wait* is the seconds until the bucket will have refilled enough
        — the number a 429 response surfaces as ``Retry-After``.
        """
        if self._rate <= 0:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0
            return False, (tokens - self._tokens) / self._rate

    def available(self) -> float:
        """Tokens currently banked (after refilling to now)."""
        if self._rate <= 0:
            return float("inf")
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionTicket:
    """One admitted request's slot; release it exactly once when done.

    Context-manager friendly::

        with controller.admit("resolve"):
            ... handle the request ...
    """

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        """Return the queue slot (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.release()


class AdmissionController:
    """Load shedding in front of the request handler.

    Two independent gates, checked in order, both O(1):

    1. **Bounded queue** — at most *max_queue* requests may be in flight
       (admitted, not yet released) at once.  The next one is shed with
       status **503** and ``Retry-After`` = *retry_after* seconds: the
       server is saturated, and queueing more work would only push every
       request's latency out.
    2. **Per-class token bucket** — each endpoint class (``"resolve"``
       reads vs ``"ingest"`` writes) may carry its own rate limit; an
       out-of-tokens request is shed with status **429** and
       ``Retry-After`` = the bucket's own refill estimate.

    A shed request raises :class:`OverloadShedError` *before* any work
    is queued — the HTTP layer turns it into the structured 429/503
    response without ever touching the service.  Classes without a
    configured bucket are rate-unlimited (the queue bound still
    applies).  ``max_queue <= 0`` disables the queue bound.
    """

    def __init__(
        self,
        *,
        max_queue: int = 64,
        rates: Optional[Dict[str, TokenBucket]] = None,
        retry_after: float = 0.5,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._max_queue = int(max_queue)
        self._rates = dict(rates) if rates else {}
        self._retry_after = float(retry_after)
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._clock = clock
        self._in_flight = 0
        self._peak_in_flight = 0
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed_429 = 0
        self.shed_503 = 0

    # ------------------------------------------------------------------
    @property
    def max_queue(self) -> int:
        """The in-flight bound (``<= 0`` = unbounded)."""
        return self._max_queue

    @property
    def in_flight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._in_flight

    def bucket(self, endpoint_class: str) -> Optional[TokenBucket]:
        """The rate bucket configured for *endpoint_class*, if any."""
        return self._rates.get(endpoint_class)

    def _inc(self, metric: str, value: float = 1) -> None:
        if self._tracer.enabled:
            self._tracer.metrics.inc(metric, value)

    # ------------------------------------------------------------------
    def admit(self, endpoint_class: str) -> AdmissionTicket:
        """Admit one request of *endpoint_class* or shed it.

        Returns an :class:`AdmissionTicket` holding a queue slot; raises
        :class:`OverloadShedError` (with status and ``retry_after``)
        when the request must be refused instead.
        """
        with self._lock:
            if 0 < self._max_queue <= self._in_flight:
                self.shed_503 += 1
                self._inc("overload.shed_503")
                raise OverloadShedError(
                    f"server saturated: {self._in_flight} request(s) in "
                    f"flight (bound {self._max_queue})",
                    status=503,
                    retry_after=self._retry_after,
                )
            bucket = self._rates.get(endpoint_class)
            if bucket is not None:
                ok, wait = bucket.try_acquire()
                if not ok:
                    self.shed_429 += 1
                    self._inc("overload.shed_429")
                    raise OverloadShedError(
                        f"rate limit exceeded for {endpoint_class!r}",
                        status=429,
                        retry_after=max(wait, 0.001),
                    )
            self._in_flight += 1
            if self._in_flight > self._peak_in_flight:
                self._peak_in_flight = self._in_flight
            self.admitted += 1
        self._inc("overload.admitted")
        if self._tracer.enabled:
            self._tracer.metrics.observe("overload.queue_depth", self._in_flight)
        return AdmissionTicket(self)

    def _release(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)

    def stats(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (served under ``/stats``)."""
        with self._lock:
            return {
                "max_queue": self._max_queue,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak_in_flight,
                "admitted": self.admitted,
                "shed_429": self.shed_429,
                "shed_503": self.shed_503,
                "rates": {
                    name: {"rate": bucket.rate, "burst": bucket.burst}
                    for name, bucket in self._rates.items()
                },
            }


class CircuitBreaker:
    """Closed → open → half-open protection around a flaky dependency.

    Parameters
    ----------
    name:
        Metric label (``breaker.<name>.*`` counters).
    failure_threshold:
        Consecutive failures that open the circuit.
    cooldown:
        Base seconds an open circuit waits before its next probe.
    seed / jitter:
        The probe schedule is drawn from ``Random(seed)``: each open
        interval is ``cooldown · (1 − jitter·u)`` with ``u ∈ [0, 1)``
        from the seeded RNG — deterministic per breaker instance, so a
        chaos run replays the exact same probe times against a fake
        clock.  ``jitter=0`` makes every interval exactly *cooldown*.
    half_open_probes:
        Successful probes required (consecutively) to close again.
    clock:
        Injectable monotonic clock.

    Use either :meth:`call` (wraps the dependency call, records the
    verdict) or the lower-level :meth:`before_call` /
    :meth:`record_success` / :meth:`record_failure` triple when failure
    is detected elsewhere (e.g. inside a retry loop).
    """

    def __init__(
        self,
        name: str = "breaker",
        *,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        seed: int = 0,
        jitter: float = 0.5,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = name
        self._threshold = failure_threshold
        self._cooldown = float(cooldown)
        self._jitter = float(jitter)
        self._probes_needed = half_open_probes
        self._clock = clock
        self._rng = Random(seed)
        self._tracer = tracer if tracer is not None else NO_OP_TRACER
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._probe_at = 0.0
        self._probe_out = False
        self.opened = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (refreshing open→half-open)."""
        with self._lock:
            self._maybe_half_open(self._clock())
            return self._state

    def _inc(self, metric: str) -> None:
        if self._tracer.enabled:
            self._tracer.metrics.inc(metric)

    def _next_interval(self) -> float:
        # Seeded, deterministic: the k-th open interval of a given
        # breaker is the same in every run.
        return self._cooldown * (1.0 - self._jitter * self._rng.random())

    def _maybe_half_open(self, now: float) -> None:
        if self._state == BREAKER_OPEN and now >= self._probe_at:
            self._state = BREAKER_HALF_OPEN
            self._probe_successes = 0
            self._probe_out = False

    def _trip(self, now: float) -> None:
        self._state = BREAKER_OPEN
        self._failures = 0
        self._probe_out = False
        self._probe_at = now + self._next_interval()
        self.opened += 1
        self._inc(f"breaker.{self.name}.opened")

    # ------------------------------------------------------------------
    def before_call(self) -> None:
        """Gate one call: raise :class:`CircuitOpenError` unless allowed.

        While half-open exactly one in-flight probe is allowed at a
        time; everyone else is rejected until its verdict lands.
        """
        with self._lock:
            now = self._clock()
            self._maybe_half_open(now)
            if self._state == BREAKER_CLOSED:
                return
            if self._state == BREAKER_HALF_OPEN and not self._probe_out:
                self._probe_out = True
                self._inc(f"breaker.{self.name}.probes")
                return
            self.rejected += 1
            self._inc(f"breaker.{self.name}.rejected")
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self._state}; "
                "dependency still failing",
                retry_after=max(self._probe_at - now, 0.001),
            )

    def record_success(self) -> None:
        """A gated call succeeded; may close a half-open circuit."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probe_out = False
                self._probe_successes += 1
                if self._probe_successes >= self._probes_needed:
                    self._state = BREAKER_CLOSED
                    self._failures = 0
                    self._inc(f"breaker.{self.name}.closed")
            else:
                self._failures = 0

    def record_failure(self) -> None:
        """A gated call failed; may open (or re-open) the circuit."""
        with self._lock:
            now = self._clock()
            if self._state == BREAKER_HALF_OPEN:
                self._trip(now)
                return
            self._failures += 1
            if self._state == BREAKER_CLOSED and self._failures >= self._threshold:
                self._trip(now)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        failure_on: Tuple[Type[BaseException], ...] = (Exception,),
    ) -> Any:
        """Run *fn* through the breaker, recording its verdict.

        Exceptions in *failure_on* count as dependency failures (and
        propagate); anything else propagates without touching the
        failure counter — a ``BadRequestError`` is the caller's fault,
        not the dependency's.
        """
        self.before_call()
        try:
            result = fn()
        except failure_on:
            self.record_failure()
            raise
        except BaseException:
            self.record_success()
            raise
        self.record_success()
        return result

    def stats(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (served under ``/stats``)."""
        with self._lock:
            self._maybe_half_open(self._clock())
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "opened": self.opened,
                "rejected": self.rejected,
                "failure_threshold": self._threshold,
                "cooldown_s": self._cooldown,
            }

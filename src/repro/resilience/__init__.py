"""``repro.resilience`` — fault tolerance for the identification pipeline.

The paper's guarantees (soundness, completeness, monotonicity, the
uniqueness/consistency constraints on MT_RS/NMT_RS) are statements about
the *final* state of the tables; this subpackage makes sure the system
still reaches such a state when the machinery under it misbehaves —
a worker process dying mid-batch, a SQLite commit failing, a federated
source refusing to load, a checkpoint file losing its tail.

- :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: deterministic, seeded fault injection at named
  pipeline sites (no wall-clock anywhere), usable from tests and the
  ``--inject-faults`` CLI flag.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy`: capped
  exponential backoff with seeded jitter and per-operation deadlines,
  applied to source loading (:mod:`repro.federation.incremental`), batch
  evaluation (:mod:`repro.blocking.executor`), and transactional commits
  (:mod:`repro.store`).
- :mod:`repro.resilience.errors` — the exception vocabulary (injected
  faults vs. give-ups).

Recovery behaviours built on these live with the components they guard:
worker-crash recovery and pair quarantine in
:class:`~repro.blocking.ParallelPairExecutor`, corruption-safe resume
and salvage in :mod:`repro.store.checkpoint`, and graceful source
degradation in :class:`~repro.federation.view.VirtualIntegratedView`.
Every failure handled emits ``resilience.*`` metrics through
:mod:`repro.observability`; ``repro stats`` renders them as a resilience
section.  See ``docs/RESILIENCE.md`` for the fault model.
"""

from repro.observability.metrics import register_metric
from repro.resilience.errors import (
    DeadlineExceededError,
    FaultPlanError,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    ResilienceError,
    RetryExhaustedError,
    SourceLoadError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    KNOWN_SITES,
    NO_OP_INJECTOR,
    SITE_CHECKPOINT,
    SITE_EXECUTOR_BATCH,
    SITE_SOURCE_LOAD_R,
    SITE_SOURCE_LOAD_S,
    SITE_STORE_COMMIT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.retry import NO_RETRY, RetryPolicy

__all__ = [
    "DeadlineExceededError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "KNOWN_SITES",
    "NO_OP_INJECTOR",
    "NO_RETRY",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryPolicy",
    "SITE_CHECKPOINT",
    "SITE_EXECUTOR_BATCH",
    "SITE_SOURCE_LOAD_R",
    "SITE_SOURCE_LOAD_S",
    "SITE_STORE_COMMIT",
    "SourceLoadError",
]

for _name, _description in (
    ("resilience.faults_injected", "deterministic faults fired by the injector"),
    ("resilience.retries", "operation attempts retried after a failure"),
    ("resilience.giveups", "operations abandoned after exhausting retries"),
    ("resilience.backoff_ms", "milliseconds of scheduled retry backoff"),
    ("resilience.worker_crashes", "worker/pool failures observed by the executor"),
    ("resilience.batches_recovered", "lost batches re-executed to completion"),
    ("resilience.pairs_quarantined", "poisoned pairs isolated and reported"),
    ("resilience.commit_failures", "transactional commits that failed and rolled back"),
    ("resilience.source_failures", "federated source loads/refreshes that failed"),
    ("resilience.degraded_refreshes", "view refreshes that left a source stale"),
    ("resilience.stale_served", "queries served from last-known-good state"),
    ("resilience.salvages", "checkpoint salvage recoveries performed"),
):
    register_metric(_name, _description)
del _name, _description

"""``repro.resilience`` — fault tolerance for the identification pipeline.

The paper's guarantees (soundness, completeness, monotonicity, the
uniqueness/consistency constraints on MT_RS/NMT_RS) are statements about
the *final* state of the tables; this subpackage makes sure the system
still reaches such a state when the machinery under it misbehaves —
a worker process dying mid-batch, a SQLite commit failing, a federated
source refusing to load, a checkpoint file losing its tail.

- :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: deterministic, seeded fault injection at named
  pipeline sites (no wall-clock anywhere), usable from tests and the
  ``--inject-faults`` CLI flag.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy`: capped
  exponential backoff with seeded jitter and per-operation deadlines,
  applied to source loading (:mod:`repro.federation.incremental`), batch
  evaluation (:mod:`repro.blocking.executor`), and transactional commits
  (:mod:`repro.store`).
- :mod:`repro.resilience.overload` — :class:`AdmissionController`
  (bounded in-flight queue + per-class token buckets shedding with
  429/503 + ``Retry-After`` *before* work is queued) and
  :class:`CircuitBreaker` (closed/open/half-open with a seeded,
  deterministic probe schedule), the serving layer's overload armour.
- :mod:`repro.resilience.chaos` — the chaos harness behind
  ``repro chaos`` and ``tests/chaos/``: real server subprocesses,
  seeded fault schedules (including SIGKILL + restart), bit-identical
  convergence checks.
- :mod:`repro.resilience.errors` — the exception vocabulary (injected
  faults vs. give-ups).

Recovery behaviours built on these live with the components they guard:
worker-crash recovery and pair quarantine in
:class:`~repro.blocking.ParallelPairExecutor`, corruption-safe resume
and salvage in :mod:`repro.store.checkpoint`, and graceful source
degradation in :class:`~repro.federation.view.VirtualIntegratedView`.
Every failure handled emits ``resilience.*`` metrics through
:mod:`repro.observability`; ``repro stats`` renders them as a resilience
section.  See ``docs/RESILIENCE.md`` for the fault model.
"""

from repro.observability.metrics import register_metric
from repro.resilience.chaos import (
    ChaosClient,
    ChaosError,
    ChaosReport,
    ChaosSchedule,
    ChaosWorkload,
    ServerProcess,
    default_schedules,
    run_chaos,
    run_entity_build_chaos,
    run_schedule,
)
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultPlanError,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    InjectedKill,
    OverloadShedError,
    ResilienceError,
    RetryExhaustedError,
    SourceLoadError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    KIND_KILL,
    KNOWN_SITES,
    NO_OP_INJECTOR,
    SERVING_SITES,
    SITE_CHECKPOINT,
    SITE_ENTITY_PERSIST,
    SITE_EXECUTOR_BATCH,
    SITE_SERVING_INVALIDATE,
    SITE_SERVING_REQUEST,
    SITE_SOURCE_LOAD_R,
    SITE_SOURCE_LOAD_S,
    SITE_STORE_COMMIT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    AdmissionTicket,
    CircuitBreaker,
    TokenBucket,
)
from repro.resilience.retry import NO_RETRY, RetryPolicy

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ChaosClient",
    "ChaosError",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosWorkload",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "InjectedKill",
    "KIND_KILL",
    "KNOWN_SITES",
    "NO_OP_INJECTOR",
    "NO_RETRY",
    "OverloadShedError",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryPolicy",
    "SERVING_SITES",
    "ServerProcess",
    "SITE_CHECKPOINT",
    "SITE_ENTITY_PERSIST",
    "SITE_EXECUTOR_BATCH",
    "SITE_SERVING_INVALIDATE",
    "SITE_SERVING_REQUEST",
    "SITE_SOURCE_LOAD_R",
    "SITE_SOURCE_LOAD_S",
    "SITE_STORE_COMMIT",
    "SourceLoadError",
    "TokenBucket",
    "default_schedules",
    "run_chaos",
    "run_entity_build_chaos",
    "run_schedule",
]

for _name, _description in (
    ("resilience.faults_injected", "deterministic faults fired by the injector"),
    ("resilience.retries", "operation attempts retried after a failure"),
    ("resilience.giveups", "operations abandoned after exhausting retries"),
    ("resilience.backoff_ms", "milliseconds of scheduled retry backoff"),
    ("resilience.worker_crashes", "worker/pool failures observed by the executor"),
    ("resilience.batches_recovered", "lost batches re-executed to completion"),
    ("resilience.pairs_quarantined", "poisoned pairs isolated and reported"),
    ("resilience.commit_failures", "transactional commits that failed and rolled back"),
    ("resilience.source_failures", "federated source loads/refreshes that failed"),
    ("resilience.degraded_refreshes", "view refreshes that left a source stale"),
    ("resilience.stale_served", "queries served from last-known-good state"),
    ("resilience.salvages", "checkpoint salvage recoveries performed"),
    ("overload.admitted", "requests admitted past the admission controller"),
    ("overload.shed_429", "requests shed with 429 (rate limit exhausted)"),
    ("overload.shed_503", "requests shed with 503 (in-flight queue full)"),
    ("overload.queue_depth", "in-flight requests observed at each admission"),
):
    register_metric(_name, _description)
del _name, _description

"""Serving chaos harness: a real server, seeded faults, bit-identical state.

The overload and resilience machinery makes promises the unit tests can
only check piecewise: requests shed cleanly, breakers fail fast, a
SIGKILL mid-transaction loses nothing committed.  This module checks
them end to end, the way ``repro chaos`` and ``tests/chaos/`` do:

1. :func:`prepare_store` writes a knowledge-only checkpoint for a
   seeded employee workload — the store every run grows from scratch;
2. :class:`ServerProcess` boots the **actual** ``repro serve`` CLI in a
   subprocess (readiness-line handshake, port 0 auto-pick), optionally
   carrying a deterministic ``--inject-faults`` schedule — including
   the ``kill`` kind, which delivers a *real* ``SIGKILL`` to the server
   at an exact request index;
3. :func:`run_schedule` drives concurrent resolve/ingest traffic from
   worker threads through :class:`ChaosClient` (a stdlib HTTP client
   that honours ``Retry-After`` and treats duplicate-key 400s as the
   at-least-once success they are), restarting the server on the same
   store whenever a scheduled kill takes it down;
4. after a graceful shutdown the grown store must **resume with
   journal verification** and its matching-table state must be
   **bit-identical** (:func:`store_state`) to the fault-free
   reference run's — injected faults may cost retries and restarts,
   never rows;
5. :func:`run_entity_build_chaos` does the same for entity builds: a
   batched ``repro entities build`` is SIGKILLed mid-build via the
   ``entities.persist`` site, re-run to completion, and must pass
   :func:`~repro.entities.verify_entity_store` with the fingerprint an
   uninterrupted build seals.

Everything is seeded — schedules, workloads, request order per thread —
so a red run replays exactly.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import ResilienceError

__all__ = [
    "ChaosError",
    "ChaosClient",
    "ChaosReport",
    "ChaosSchedule",
    "ServerProcess",
    "default_schedules",
    "prepare_store",
    "run_chaos",
    "run_entity_build_chaos",
    "run_schedule",
    "store_state",
]


class ChaosError(ResilienceError):
    """The harness itself failed (server never came up, store torn)."""


@dataclass(frozen=True)
class ChaosSchedule:
    """One named, deterministic fault schedule for a server run."""

    name: str
    faults: str = ""

    @property
    def kills(self) -> bool:
        """True iff the schedule delivers at least one real SIGKILL."""
        return ":kill@" in self.faults


def default_schedules() -> List[ChaosSchedule]:
    """The stock matrix: ≥ 10 distinct seeded schedules, one lethal.

    Every schedule must end bit-identical to the fault-free reference —
    that is the acceptance criterion ``repro chaos`` enforces.
    """
    return [
        ChaosSchedule("request-error-early", "serving.request:error@2"),
        ChaosSchedule("request-error-burst", "serving.request:error@4..6"),
        ChaosSchedule("commit-fail-once", "store.commit:error@3"),
        ChaosSchedule("commit-fail-twice", "store.commit:error@5;store.commit:error@9"),
        ChaosSchedule("invalidate-fail", "serving.invalidate:error@1"),
        ChaosSchedule(
            "invalidate-then-commit",
            "serving.invalidate:error@2;store.commit:error@6",
        ),
        ChaosSchedule(
            "request-and-commit",
            "serving.request:error@1;store.commit:error@4",
        ),
        ChaosSchedule("request-crash", "serving.request:crash@7"),
        ChaosSchedule(
            "mixed-storm",
            "serving.request:error@0;serving.invalidate:error@3;"
            "store.commit:error@8;serving.request:error@12",
        ),
        ChaosSchedule("sigkill-midstream", "serving.request:kill@9"),
    ]


@dataclass
class ChaosReport:
    """What one schedule's run did and whether it converged."""

    schedule: str
    faults: str
    ok: bool
    ingests: int
    resolves: int
    retries: int
    restarts: int
    sheds: int
    state: Dict[str, Any] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (the ``repro chaos --json`` body)."""
        return {
            "schedule": self.schedule,
            "faults": self.faults,
            "ok": self.ok,
            "ingests": self.ingests,
            "resolves": self.resolves,
            "retries": self.retries,
            "restarts": self.restarts,
            "sheds": self.sheds,
            "state": self.state,
            "failures": self.failures,
        }


# ----------------------------------------------------------------------
# Workload + store preparation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosWorkload:
    """The replayable traffic every schedule drives, plus its key map."""

    rows: Tuple[Tuple[str, Dict[str, Any]], ...]
    key_attrs: Dict[str, Tuple[str, ...]]


def prepare_store(path: str, *, n_entities: int = 12, seed: int = 3) -> ChaosWorkload:
    """Write a knowledge-only checkpoint at *path*; return the traffic.

    The returned workload carries the full row set in a deterministic
    interleaved order (r/s alternating), ready to be ingested through
    the API — the same shape every schedule replays — plus each side's
    primary-key attributes for building ``/resolve`` queries.
    """
    from repro.federation.incremental import IncrementalIdentifier
    from repro.workloads import EmployeeWorkloadSpec, employee_workload

    workload = employee_workload(
        EmployeeWorkloadSpec(n_entities=n_entities, seed=seed)
    )
    session = IncrementalIdentifier(
        workload.r.schema,
        workload.s.schema,
        list(workload.extended_key),
        ilfds=list(workload.ilfds),
    )
    session.checkpoint(path)  # knowledge only — rows arrive via /ingest
    session.store.close()

    r_rows = [("r", dict(row)) for row in workload.r.rows]
    s_rows = [("s", dict(row)) for row in workload.s.rows]
    interleaved: List[Tuple[str, Dict[str, Any]]] = []
    for index in range(max(len(r_rows), len(s_rows))):
        if index < len(r_rows):
            interleaved.append(r_rows[index])
        if index < len(s_rows):
            interleaved.append(s_rows[index])
    return ChaosWorkload(
        rows=tuple(interleaved),
        key_attrs={
            "r": tuple(sorted(workload.r.schema.primary_key)),
            "s": tuple(sorted(workload.s.schema.primary_key)),
        },
    )


def store_state(path: str) -> Dict[str, Any]:
    """Resume *path* with full verification; return its canonical state.

    Runs the journal replay + constraint audit
    (:meth:`IncrementalIdentifier.resume` with ``verify=True``, i.e.
    ``verify_journal``), then fingerprints the matching table
    order-independently.  Two stores agree bit-identically iff their
    states compare equal.
    """
    from repro.federation.incremental import IncrementalIdentifier
    from repro.store.codec import encode_key

    resumed = IncrementalIdentifier.resume(path, verify=True)
    try:
        pairs = sorted(
            (encode_key(r_key), encode_key(s_key))
            for r_key, s_key in resumed.matching_table().pairs()
        )
        r, s = resumed.relations()
        material = json.dumps(pairs, separators=(",", ":")).encode("utf-8")
        return {
            "rows_r": len(r.rows),
            "rows_s": len(s.rows),
            "matches": len(pairs),
            "mt_fingerprint": hashlib.sha256(material).hexdigest(),
        }
    finally:
        resumed.store.close()


# ----------------------------------------------------------------------
# The server subprocess
# ----------------------------------------------------------------------
class ServerProcess:
    """One ``repro serve`` subprocess with a readiness handshake."""

    def __init__(
        self,
        store_path: str,
        *,
        faults: str = "",
        host: str = "127.0.0.1",
        extra_args: Sequence[str] = (),
        startup_timeout: float = 30.0,
    ) -> None:
        self.store_path = store_path
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--store",
            f"sqlite:{store_path}",
            "--host",
            host,
            "--port",
            "0",
            "--workers",
            "2",
            "--retries",
            "3",
        ]
        if faults:
            argv += ["--inject-faults", faults]
        argv += list(extra_args)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.host, self.port = self._await_ready(startup_timeout)

    def _await_ready(self, timeout: float) -> Tuple[str, int]:
        # The CLI prints exactly one readiness line once bound:
        #   repro serve: listening on http://HOST:PORT (...)
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise ChaosError(
                    "server exited before its readiness line "
                    f"(rc={self.process.poll()})"
                )
            if "listening on http://" in line:
                address = line.split("http://", 1)[1].split()[0]
                host, _, port_text = address.partition(":")
                return host, int(port_text)
        self.process.kill()
        raise ChaosError(f"server not ready within {timeout}s")

    @property
    def alive(self) -> bool:
        """True while the subprocess has not exited."""
        return self.process.poll() is None

    def terminate(self, timeout: float = 30.0) -> int:
        """Graceful SIGTERM shutdown; returns the exit status."""
        if self.alive:
            self.process.terminate()
        return self.wait(timeout)

    def interrupt(self, timeout: float = 30.0) -> int:
        """Graceful SIGINT shutdown (must drain exactly like SIGTERM)."""
        if self.alive:
            self.process.send_signal(signal.SIGINT)
        return self.wait(timeout)

    def kill(self) -> None:
        """The ungraceful path: straight SIGKILL."""
        if self.alive:
            self.process.kill()
        self.wait(10.0)

    def wait(self, timeout: float = 30.0) -> int:
        """Wait for exit, draining stdout; SIGKILL on a hung shutdown."""
        try:
            self.process.wait(timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung server
            self.process.kill()
            self.process.wait(10.0)
        if self.process.stdout is not None:
            self.process.stdout.close()
        return self.process.returncode


# ----------------------------------------------------------------------
# The client
# ----------------------------------------------------------------------
class ChaosClient:
    """A small stdlib HTTP client that retries the way the docs say to.

    429/503 responses are retried after their ``Retry-After`` hint
    (capped so tests stay fast); 400 ``duplicate key`` on ``/ingest``
    counts as success (the faulted attempt had already committed —
    at-least-once); connection failures surface as ``None`` so the
    caller can restart a killed server.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        max_retry_after: float = 0.2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retry_after = max_retry_after
        self.retries = 0
        self.sheds = 0

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Optional[Tuple[int, Dict[str, str], Any]]:
        """One HTTP exchange, or ``None`` when the server is gone."""
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"} if payload else {},
            )
            response = connection.getresponse()
            raw = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = raw.decode("utf-8", "replace")
            return response.status, headers, decoded
        except (ConnectionError, socket.timeout, OSError):
            return None
        finally:
            connection.close()

    def _backoff(self, headers: Dict[str, str]) -> None:
        try:
            hint = float(headers.get("retry-after", "0"))
        except ValueError:
            hint = 0.0
        time.sleep(min(max(hint, 0.01), self.max_retry_after))

    def call_with_retry(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        attempts: int = 30,
    ) -> Optional[Tuple[int, Any]]:
        """Drive one logical request to a verdict, retrying per contract.

        Returns ``(status, decoded body)`` of the final attempt, or
        ``None`` when the server went away (caller restarts and
        replays).
        """
        last: Optional[Tuple[int, Any]] = None
        for _attempt in range(attempts):
            answer = self.request(method, path, body)
            if answer is None:
                return None
            status, headers, decoded = answer
            last = (status, decoded)
            if status in (429, 503):
                self.sheds += 1
                self.retries += 1
                self._backoff(headers)
                continue
            if status == 400 and path == "/ingest":
                message = (
                    decoded.get("error", "") if isinstance(decoded, dict) else ""
                )
                if "duplicate key" in message:
                    return 200, decoded  # already committed: success
            if status >= 500:
                self.retries += 1
                self._backoff(headers)
                continue
            return last
        return last


# ----------------------------------------------------------------------
# Driving one schedule
# ----------------------------------------------------------------------
def _drive_traffic(
    server: ServerProcess,
    traffic: "ChaosWorkload",
    report: ChaosReport,
    *,
    resolve_threads: int = 2,
    restart_budget: int = 3,
) -> ServerProcess:
    """Ingest every row (with restarts) under concurrent resolve load."""
    import urllib.parse

    rows = traffic.rows
    stop = threading.Event()
    lock = threading.Lock()
    resolve_counts = [0] * resolve_threads
    client = ChaosClient(server.host, server.port)

    def resolver(slot: int) -> None:
        # Each resolver loops over a deterministic slice of the keys;
        # answers may legitimately be found=False before the ingest
        # lands, degraded, or shed — never a hang, never a torn row.
        local = ChaosClient(server.host, server.port, timeout=5.0)
        index = slot
        while not stop.is_set():
            side, row = rows[index % len(rows)]
            key = urllib.parse.quote(
                ",".join(
                    f"{attr}={row.get(attr, '')}"
                    for attr in traffic.key_attrs[side]
                )
            )
            local.request("GET", f"/resolve?source={side}&key={key}")
            resolve_counts[slot] += 1
            index += resolve_threads
            time.sleep(0.002)

    threads = [
        threading.Thread(target=resolver, args=(slot,), daemon=True)
        for slot in range(resolve_threads)
    ]
    for thread in threads:
        thread.start()
    try:
        for side, row in rows:
            body = {"source": side, "row": row}
            for _replay in range(restart_budget + 1):
                answer = client.call_with_retry("POST", "/ingest", body)
                if answer is not None and answer[0] == 200:
                    with lock:
                        report.ingests += 1
                    break
                if answer is None or not server.alive:
                    # A scheduled kill took the server down mid-request:
                    # restart on the same store (faults already spent in
                    # the dead process) and replay this row.
                    server.wait(10.0)
                    server = ServerProcess(server.store_path)
                    client = ChaosClient(server.host, server.port)
                    with lock:
                        report.restarts += 1
                    continue
                report.failures.append(
                    f"ingest of {side} row gave {answer[0]}: {answer[1]!r}"
                )
                break
            else:
                report.failures.append(
                    f"ingest of one {side} row exhausted {restart_budget} restarts"
                )
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        report.resolves += sum(resolve_counts)
        report.retries += client.retries
        report.sheds += client.sheds
    return server


def run_schedule(
    pristine_path: str,
    traffic: "ChaosWorkload",
    schedule: ChaosSchedule,
    workdir: str,
    *,
    reference_state: Optional[Dict[str, Any]] = None,
    graceful: str = "term",
) -> ChaosReport:
    """One schedule end to end: copy, serve, inject, drain, verify."""
    path = os.path.join(workdir, f"chaos-{schedule.name}.sqlite")
    shutil.copyfile(pristine_path, path)
    report = ChaosReport(
        schedule=schedule.name,
        faults=schedule.faults,
        ok=False,
        ingests=0,
        resolves=0,
        retries=0,
        restarts=0,
        sheds=0,
    )
    server = ServerProcess(path, faults=schedule.faults)
    server = _drive_traffic(server, traffic, report)
    rc = server.interrupt() if graceful == "int" else server.terminate()
    if rc != 0:
        report.failures.append(f"graceful shutdown exited {rc}")
    try:
        report.state = store_state(path)
    except Exception as exc:  # noqa: BLE001 - any verify failure is a finding
        report.failures.append(f"post-run verification failed: {exc}")
        return report
    if reference_state is not None and report.state != reference_state:
        report.failures.append(
            f"state diverged from fault-free reference: "
            f"{report.state} != {reference_state}"
        )
    report.ok = not report.failures
    return report


def run_chaos(
    workdir: str,
    *,
    schedules: Optional[Sequence[ChaosSchedule]] = None,
    n_entities: int = 12,
    seed: int = 3,
) -> List[ChaosReport]:
    """The full harness: fault-free reference, then every schedule.

    Returns one report per schedule (the reference run is first, named
    ``reference``); a schedule is ``ok`` iff its traffic completed, the
    store resumed with verification, and its state is bit-identical to
    the reference.
    """
    schedules = (
        list(schedules) if schedules is not None else default_schedules()
    )
    pristine = os.path.join(workdir, "chaos-pristine.sqlite")
    traffic = prepare_store(pristine, n_entities=n_entities, seed=seed)
    reference = run_schedule(
        pristine, traffic, ChaosSchedule("reference", ""), workdir
    )
    if not reference.ok:
        raise ChaosError(
            "the fault-free reference run itself failed: "
            + "; ".join(reference.failures)
        )
    reports = [reference]
    for schedule in schedules:
        reports.append(
            run_schedule(
                pristine,
                traffic,
                schedule,
                workdir,
                reference_state=reference.state,
            )
        )
    return reports


# ----------------------------------------------------------------------
# Entity-build chaos
# ----------------------------------------------------------------------
def run_entity_build_chaos(
    workdir: str,
    *,
    kill_batch: int = 2,
    batch_size: int = 3,
    n_entities: int = 12,
    seed: int = 3,
) -> Dict[str, Any]:
    """SIGKILL a batched ``repro entities build`` mid-way, resume, verify.

    Runs the build CLI three times against seeded CSV sources: once
    uninterrupted (the reference fingerprint), once with
    ``entities.persist:kill@{kill_batch}`` (the process dies mid-build,
    by real SIGKILL, after *kill_batch* committed batches), and once
    more without faults (the resume).  The resumed store must pass
    ``verify_entity_store`` and seal the reference fingerprint —
    bit-identical recovery.
    """
    import csv

    from repro.entities import verify_entity_store
    from repro.store.sqlite import SqliteStore
    from repro.workloads import EmployeeWorkloadSpec, employee_workload

    workload = employee_workload(
        EmployeeWorkloadSpec(n_entities=n_entities, seed=seed)
    )
    paths = {}
    for name, relation in (("r", workload.r), ("s", workload.s)):
        csv_path = os.path.join(workdir, f"entity-src-{name}.csv")
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation.schema.names)
            for row in relation.rows:
                mapping = dict(row)
                writer.writerow(
                    [
                        "" if mapping.get(attr) is None else mapping[attr]
                        for attr in relation.schema.names
                    ]
                )
        paths[name] = csv_path
    key_attrs = {
        "r": ",".join(sorted(workload.r.schema.primary_key)),
        "s": ",".join(sorted(workload.s.schema.primary_key)),
    }
    ilfd_texts = [
        " -> ".join(
            " & ".join(
                f"{condition.attribute}={condition.value}"
                for condition in sorted(clause, key=lambda c: c.attribute)
            )
            for clause in (ilfd.antecedent, ilfd.consequent)
        )
        for ilfd in workload.ilfds
    ]

    def build(store_path: str, faults: str = "") -> subprocess.CompletedProcess:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "entities",
            "build",
            store_path,
            "--source",
            f"r={paths['r']}",
            "--source",
            f"s={paths['s']}",
            "--key",
            f"r={key_attrs['r']}",
            "--key",
            f"s={key_attrs['s']}",
            "--extended-key",
            ",".join(workload.extended_key),
            "--batch-size",
            str(batch_size),
            "--quiet",
        ]
        for text in ilfd_texts:
            argv += ["--ilfd", text]
        if faults:
            argv += ["--inject-faults", faults]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            argv, capture_output=True, text=True, timeout=120, env=env
        )

    reference_path = os.path.join(workdir, "entities-reference.sqlite")
    reference = build(reference_path)
    if reference.returncode != 0:
        raise ChaosError(
            f"reference entity build failed rc={reference.returncode}: "
            f"{reference.stdout}"
        )
    store = SqliteStore(reference_path, read_only=True)
    try:
        _, reference_fingerprint = verify_entity_store(store)
    finally:
        store.close()

    chaos_path = os.path.join(workdir, "entities-chaos.sqlite")
    killed = build(chaos_path, faults=f"entities.persist:kill@{kill_batch}")
    killed_by_signal = killed.returncode == -signal.SIGKILL
    interrupted = False
    try:
        store = SqliteStore(chaos_path, read_only=True)
        try:
            verify_entity_store(store)
        finally:
            store.close()
    except Exception:
        interrupted = True  # expected: build marked in-progress (or torn)

    resumed = build(chaos_path)
    if resumed.returncode != 0:
        raise ChaosError(
            f"resumed entity build failed rc={resumed.returncode}: "
            f"{resumed.stdout}"
        )
    store = SqliteStore(chaos_path, read_only=True)
    try:
        count, resumed_fingerprint = verify_entity_store(store)
    finally:
        store.close()
    return {
        "killed_by_signal": killed_by_signal,
        "interrupted_detected": interrupted,
        "entities": count,
        "reference_fingerprint": reference_fingerprint,
        "resumed_fingerprint": resumed_fingerprint,
        "bit_identical": resumed_fingerprint == reference_fingerprint,
        "ok": killed_by_signal
        and interrupted
        and resumed_fingerprint == reference_fingerprint,
    }

"""Retry with capped exponential backoff, seeded jitter, and deadlines.

:class:`RetryPolicy` is a small immutable value object: how many
attempts, how the delay between them grows, how much jitter to add, and
an optional per-operation deadline.  Jitter comes from a *seeded*
``random.Random`` created per :meth:`RetryPolicy.call`, so two runs with
the same policy back off identically — chaos experiments stay
reproducible.  The sleep and clock functions are injectable; tests pass
``sleep=None`` and retries cost no wall-clock at all.

The policy is applied at three pipeline sites (see ``docs/RESILIENCE.md``):
source loading in :mod:`repro.federation.incremental`, batch evaluation
in :mod:`repro.blocking.executor`, and transactional commits in
:mod:`repro.store`.  Every retry and give-up is counted under
``resilience.*`` metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Optional, Tuple, Type

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import DeadlineExceededError, RetryExhaustedError

__all__ = ["RetryPolicy", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to retry a failed operation.

    Parameters
    ----------
    max_attempts:
        Total attempts, first try included (``1`` = never retry).
    base_delay:
        Seconds before the first retry, pre-jitter.
    multiplier:
        Exponential growth factor between retries.
    max_delay:
        Cap on any single pre-jitter delay.
    jitter:
        Fraction of the delay randomised: the slept delay is drawn
        uniformly from ``[delay·(1-jitter), delay]`` ("equal jitter").
        ``0.0`` makes backoff fully deterministic in wall-clock too.
    seed:
        Seed of the per-call jitter RNG — same seed, same backoff
        schedule, every run.
    deadline:
        Optional per-operation budget in seconds; when the elapsed time
        plus the next delay would exceed it, the policy gives up with
        :class:`~repro.resilience.errors.DeadlineExceededError` instead
        of sleeping past the budget.
    sleep / clock:
        Injectable ``time.sleep`` / ``time.perf_counter``; pass
        ``sleep=None`` to retry without any real waiting (tests, chaos
        runs).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    deadline: Optional[float] = None
    sleep: Optional[Callable[[float], None]] = time.sleep
    clock: Callable[[], float] = time.perf_counter

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------
    def delay_for(self, attempt: int, rng: Random) -> float:
        """Post-jitter delay after failed attempt number *attempt* (1-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and delay > 0:
            delay -= rng.uniform(0.0, self.jitter) * delay
        return delay

    def call(
        self,
        fn: Callable[[], Any],
        *,
        operation: str = "operation",
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        fatal: Tuple[Type[BaseException], ...] = (),
        tracer: Optional[Tracer] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run *fn*, retrying per this policy; return its result.

        ``retry_on`` names the exception types worth retrying; anything
        in ``fatal`` (checked first) propagates immediately — programmer
        errors and constraint violations should never be retried into
        silence.  After the last attempt the final failure is wrapped in
        :class:`RetryExhaustedError` (cause chained).  ``on_retry`` is
        called as ``on_retry(attempt, exc)`` before each backoff.
        """
        tracer = tracer if tracer is not None else NO_OP_TRACER
        rng = Random(self.seed)
        started = self.clock()
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except fatal:
                raise
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = self.delay_for(attempt, rng)
                if (
                    self.deadline is not None
                    and (self.clock() - started) + delay > self.deadline
                ):
                    if tracer.enabled:
                        tracer.metrics.inc("resilience.giveups")
                    raise DeadlineExceededError(
                        f"{operation}: deadline of {self.deadline:g}s exhausted "
                        f"after {attempt} attempt(s): {exc}"
                    ) from exc
                if tracer.enabled:
                    tracer.metrics.inc("resilience.retries")
                    tracer.metrics.observe(
                        "resilience.backoff_ms", delay * 1000.0
                    )
                if on_retry is not None:
                    on_retry(attempt, exc)
                if self.sleep is not None and delay > 0:
                    self.sleep(delay)
        if tracer.enabled:
            tracer.metrics.inc("resilience.giveups")
        raise RetryExhaustedError(
            f"{operation} failed after {self.max_attempts} attempt(s): {last}",
            attempts=self.max_attempts,
        ) from last

    # ------------------------------------------------------------------
    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        """A copy with a different attempt budget."""
        from dataclasses import replace

        return replace(self, max_attempts=max_attempts)

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A single-attempt policy (the default everywhere)."""
        return cls(max_attempts=1, base_delay=0.0, sleep=None)

    @classmethod
    def fast(cls, max_attempts: int = 3, *, seed: int = 0) -> "RetryPolicy":
        """A no-sleep policy for tests and chaos runs (retries, no waits)."""
        return cls(
            max_attempts=max_attempts, base_delay=0.0, seed=seed, sleep=None
        )


NO_RETRY = RetryPolicy.no_retry()
"""Shared single-attempt policy: the behaviour of code that never retries."""

"""Deterministic fault injection: plans, sites, and the injector.

A :class:`FaultPlan` names, per instrumented *site*, which invocations
fail and how.  Plans are pure data — no wall-clock, no global state —
so a plan plus a workload is a reproducible chaos experiment: the
``k``-th time the pipeline passes a site, the same fault fires (or does
not), regardless of machine speed or worker scheduling.

Sites are dotted strings.  The ones built into the pipeline:

========================================  =====================================
site                                      instrumented operation
========================================  =====================================
``federation.load_source.r`` / ``.s``     one attempt to load/refresh a source
``executor.batch``                        one batch result collected from a
                                          worker (a crash here loses the batch)
``store.commit``                          one transactional commit
``store.checkpoint``                      one checkpoint snapshot write
``serving.request``                       one serving operation (a resolve
                                          lookup or an ingest) being handled
``serving.invalidate``                    one post-commit cache invalidation
``entities.persist``                      one batch of an entity build being
                                          committed
========================================  =====================================

Plans come from three constructors:

- :meth:`FaultPlan.parse` — the CLI's ``--inject-faults`` syntax, e.g.
  ``"executor.batch:crash@0;store.commit:error@1..2"``,
- :meth:`FaultPlan.random` — a seeded random schedule over given sites
  (the chaos property tests draw these),
- :meth:`FaultPlan.none` — the empty plan.

The :class:`FaultInjector` holds a plan plus per-site invocation
counters; components call :meth:`FaultInjector.fire` at their sites.
:data:`NO_OP_INJECTOR` is the free default every instrumented component
falls back to.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.resilience.errors import (
    FaultPlanError,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    InjectedKill,
)

__all__ = [
    "SITE_SOURCE_LOAD_R",
    "SITE_SOURCE_LOAD_S",
    "SITE_EXECUTOR_BATCH",
    "SITE_STORE_COMMIT",
    "SITE_CHECKPOINT",
    "SITE_SERVING_REQUEST",
    "SITE_SERVING_INVALIDATE",
    "SITE_ENTITY_PERSIST",
    "KNOWN_SITES",
    "SERVING_SITES",
    "FAULT_KINDS",
    "KIND_KILL",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "NO_OP_INJECTOR",
]

SITE_SOURCE_LOAD_R = "federation.load_source.r"
SITE_SOURCE_LOAD_S = "federation.load_source.s"
SITE_EXECUTOR_BATCH = "executor.batch"
SITE_STORE_COMMIT = "store.commit"
SITE_CHECKPOINT = "store.checkpoint"
SITE_SERVING_REQUEST = "serving.request"
SITE_SERVING_INVALIDATE = "serving.invalidate"
SITE_ENTITY_PERSIST = "entities.persist"

KNOWN_SITES = (
    SITE_SOURCE_LOAD_R,
    SITE_SOURCE_LOAD_S,
    SITE_EXECUTOR_BATCH,
    SITE_STORE_COMMIT,
    SITE_CHECKPOINT,
    SITE_SERVING_REQUEST,
    SITE_SERVING_INVALIDATE,
    SITE_ENTITY_PERSIST,
)
"""The sites the pipeline instruments (plans may name others freely)."""

SERVING_SITES = (
    SITE_SERVING_REQUEST,
    SITE_SERVING_INVALIDATE,
    SITE_STORE_COMMIT,
)
"""The sites a live server exercises (chaos schedules draw from these)."""

KIND_KILL = "kill"
"""The lethal kind: a real ``SIGKILL`` to the current process."""

FAULT_KINDS: Dict[str, Type[InjectedFault]] = {
    "error": InjectedFault,
    "crash": InjectedCrash,
    "hang": InjectedHang,
    KIND_KILL: InjectedKill,
}
"""Fault kind names → the exception class the injector raises."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *site*'s invocation number *index* raises *kind*.

    ``index`` is 0-based and counts invocations of the site across the
    injector's lifetime, which is what makes schedules deterministic.
    """

    site: str
    index: int
    kind: str = "error"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.index < 0:
            raise FaultPlanError(f"fault index must be >= 0, got {self.index}")

    def __str__(self) -> str:
        return f"{self.site}:{self.kind}@{self.index}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (nothing ever fails)."""
        return cls(())

    @classmethod
    def of(cls, specs: Iterable[FaultSpec]) -> "FaultPlan":
        """A plan from explicit specs."""
        return cls(tuple(specs))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax: ``site:kind@index[..last]``, ``;``-joined.

        Examples::

            executor.batch:crash@0
            store.commit:error@1;executor.batch:crash@0..2
            federation.load_source.s:error@0..1

        ``kind`` defaults to ``error`` when omitted
        (``"store.commit@0"``).  Raises :class:`FaultPlanError` on
        malformed input.
        """
        specs: List[FaultSpec] = []
        for chunk in text.replace(",", ";").split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                raise FaultPlanError(
                    f"fault spec {chunk!r} lacks '@index' "
                    "(expected site[:kind]@index[..last])"
                )
            head, _, index_text = chunk.rpartition("@")
            site, _, kind = head.partition(":")
            site = site.strip()
            kind = kind.strip() or "error"
            if not site:
                raise FaultPlanError(f"fault spec {chunk!r} names no site")
            first_text, dots, last_text = index_text.partition("..")
            try:
                first = int(first_text)
                last = int(last_text) if dots else first
            except ValueError:
                raise FaultPlanError(
                    f"fault spec {chunk!r}: bad index {index_text!r}"
                ) from None
            if last < first:
                raise FaultPlanError(
                    f"fault spec {chunk!r}: empty index range {index_text!r}"
                )
            for index in range(first, last + 1):
                specs.append(FaultSpec(site, index, kind))
        return cls(tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        sites: Sequence[str] = KNOWN_SITES,
        rate: float = 0.25,
        horizon: int = 6,
        kinds: Sequence[str] = ("error", "crash"),
    ) -> "FaultPlan":
        """A seeded random schedule — same seed, same plan, any machine.

        For each *site* and each invocation index below *horizon*, a
        fault of a random *kind* is scheduled with probability *rate*
        (drawn from ``random.Random(seed)``; no wall-clock anywhere).
        """
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for site in sites:
            for index in range(horizon):
                if rng.random() < rate:
                    specs.append(FaultSpec(site, index, rng.choice(list(kinds))))
        return cls(tuple(specs))

    def is_empty(self) -> bool:
        """True iff the plan schedules nothing."""
        return not self.specs

    def lookup(self) -> Dict[str, Dict[int, str]]:
        """``site → {invocation index → kind}`` (later specs win)."""
        table: Dict[str, Dict[int, str]] = {}
        for spec in self.specs:
            table.setdefault(spec.site, {})[spec.index] = spec.kind
        return table

    def __str__(self) -> str:
        return ";".join(str(spec) for spec in self.specs) or "(no faults)"


@dataclass
class FaultInjector:
    """Fires a :class:`FaultPlan` deterministically at instrumented sites.

    One injector observes one run: it counts invocations per site and
    raises the scheduled exception when the counter hits a planned
    index.  ``fired`` records every fault raised (for reports and
    assertions); metrics land in the tracer as
    ``resilience.faults_injected``.
    """

    plan: FaultPlan = field(default_factory=FaultPlan.none)
    tracer: Tracer = NO_OP_TRACER

    enabled: bool = True
    lethal: bool = True

    def __post_init__(self) -> None:
        self._table = self.plan.lookup()
        self._counts: Dict[str, int] = {}
        self.fired: List[FaultSpec] = []

    def fire(self, site: str) -> None:
        """Count one invocation of *site*; raise (or kill) if the plan says so.

        A scheduled ``kill`` delivers a real ``SIGKILL`` to the current
        process — no exception, no cleanup, the honest mid-transaction
        death the chaos harness schedules in subprocesses.  With
        ``lethal=False`` it raises :class:`InjectedKill` instead, so
        in-process tests can assert the schedule without dying.
        """
        index = self._counts.get(site, 0)
        self._counts[site] = index + 1
        kind = self._table.get(site, {}).get(index)
        if kind is None:
            return
        spec = FaultSpec(site, index, kind)
        self.fired.append(spec)
        if self.tracer.enabled:
            self.tracer.metrics.inc("resilience.faults_injected")
        if kind == KIND_KILL and self.lethal:
            os.kill(
                os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM)
            )  # never returns
        raise FAULT_KINDS[kind](f"injected {kind} at {spec}")

    def invocations(self, site: str) -> int:
        """How many times *site* has fired (including faulted calls)."""
        return self._counts.get(site, 0)

    def reset(self) -> None:
        """Zero all counters and the fired log (plan unchanged)."""
        self._counts.clear()
        self.fired.clear()


class _NoOpInjector(FaultInjector):
    """The free default: counts nothing, raises nothing."""

    def __init__(self) -> None:
        super().__init__(FaultPlan.none())
        self.enabled = False

    def fire(self, site: str) -> None:  # noqa: D102 - free no-op
        pass


NO_OP_INJECTOR = _NoOpInjector()
"""Shared do-nothing injector every instrumented component defaults to."""

"""Exceptions of the fault-tolerance subsystem.

Two families:

- **Injected** faults (:class:`InjectedFault` and subclasses) are raised
  by :class:`~repro.resilience.faults.FaultInjector` at instrumented
  sites — they simulate the machinery misbehaving (a source load
  erroring, a worker dying, a commit failing) and are what the chaos
  tests drive through the recovery paths.
- **Give-up** errors (:class:`RetryExhaustedError`,
  :class:`DeadlineExceededError`, :class:`SourceLoadError`) are raised
  by the recovery machinery itself once a
  :class:`~repro.resilience.retry.RetryPolicy` has spent its budget —
  they always chain the underlying cause.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "InjectedKill",
    "RetryExhaustedError",
    "DeadlineExceededError",
    "SourceLoadError",
    "FaultPlanError",
    "OverloadShedError",
    "CircuitOpenError",
]


class ResilienceError(Exception):
    """Base class for fault-tolerance errors."""


class FaultPlanError(ResilienceError):
    """A fault-plan spec string does not parse."""


class InjectedFault(ResilienceError):
    """A deterministic fault fired at an instrumented site.

    The generic kind models an operation *erroring* (a source raising,
    a write failing mid-transaction).  Subclasses refine the failure
    mode; recovery code should treat any :class:`InjectedFault` exactly
    like the real failure it stands in for.
    """


class InjectedCrash(InjectedFault):
    """A worker died: the in-flight batch is lost, the pool is suspect.

    Stands in for :class:`concurrent.futures.process.BrokenProcessPool`
    (a worker killed by the OOM killer, a segfault in native code).
    """


class InjectedHang(InjectedFault):
    """An operation stalled past its deadline (simulated, no wall-clock)."""


class InjectedKill(InjectedFault):
    """The process was SIGKILLed at an instrumented site.

    Only ever *raised* when the injector is asked to simulate
    (``FaultInjector(lethal=False)``); a lethal injector delivers a real
    ``SIGKILL`` to the current process instead — no cleanup, no atexit,
    no rolled-back transaction.  The chaos harness schedules these in
    subprocesses and asserts the survivor state recovers bit-identically.
    """


class OverloadShedError(ResilienceError):
    """A request was refused *before* any work was queued for it.

    Raised by :class:`~repro.resilience.overload.AdmissionController`
    when the bounded queue is full (``status`` 503) or the endpoint
    class is out of rate-limit tokens (``status`` 429).  ``retry_after``
    is the seconds a well-behaved client should wait — the serving layer
    surfaces it as an HTTP ``Retry-After`` header.
    """

    def __init__(
        self, message: str, *, status: int = 503, retry_after: float = 1.0
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class CircuitOpenError(ResilienceError):
    """A circuit breaker refused the call without attempting it.

    Raised by :class:`~repro.resilience.overload.CircuitBreaker` while
    open: the protected dependency failed repeatedly and the breaker is
    waiting out its cooldown before probing again.  ``retry_after`` is
    the seconds until the next scheduled probe.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RetryExhaustedError(ResilienceError):
    """A retried operation failed on every attempt.

    ``attempts`` records how many were made; the final underlying
    failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class DeadlineExceededError(ResilienceError):
    """A retried operation ran out of its per-operation deadline."""


class SourceLoadError(ResilienceError):
    """A federated source could not be loaded or refreshed.

    Raised by :meth:`~repro.federation.incremental.IncrementalIdentifier.load_sources`
    after retries are exhausted; caught by
    :class:`~repro.federation.view.VirtualIntegratedView`, which degrades
    to serving the surviving relation instead of propagating it.
    """

    def __init__(self, message: str, *, side: str = "") -> None:
        super().__init__(message)
        self.side = side

"""The five existing approaches surveyed in Section 2.2.

The paper positions its technique against five families of prior work;
each is implemented here behind a common interface so the comparison
benches can measure the qualitative claims (who is applicable when, who
stays sound under instance-level homonyms, who needs a common key):

1. **Key equivalence** (Multibase) — match on a shared candidate key;
   inapplicable without one and unsound when the key is not a key of the
   integrated world (:mod:`repro.baselines.key_equivalence`).
2. **User-specified equivalence** (Pegasus) — the user supplies the
   matching table (:mod:`repro.baselines.user_specified`).
3. **Probabilistic key equivalence** (Pu) — subfield matching over the
   common key; tolerant but can err
   (:mod:`repro.baselines.probabilistic_key`).
4. **Probabilistic attribute equivalence** (Chatterjee & Segev) —
   a comparison value over all common attributes
   (:mod:`repro.baselines.probabilistic_attr`).
5. **Heuristic rules** (Wang & Madnick) — knowledge-based inference of
   extra attribute values without a soundness guarantee
   (:mod:`repro.baselines.heuristic`).

:mod:`repro.baselines.evaluation` scores any matcher's output against a
ground-truth pairing (precision/recall/F1 plus uniqueness-violation
counts), which is how bench X2 validates the paper's Section-2 arguments.
"""

from repro.baselines.base import (
    BaselineMatcher,
    BaselineResult,
    InapplicableError,
    ScoredPair,
)
from repro.baselines.key_equivalence import KeyEquivalenceMatcher
from repro.baselines.user_specified import UserSpecifiedMatcher
from repro.baselines.probabilistic_key import ProbabilisticKeyMatcher
from repro.baselines.probabilistic_attr import ProbabilisticAttributeMatcher
from repro.baselines.heuristic import HeuristicRule, HeuristicRuleMatcher
from repro.baselines.evaluation import MatchQuality, evaluate, evaluate_pairs

__all__ = [
    "BaselineMatcher",
    "BaselineResult",
    "HeuristicRule",
    "HeuristicRuleMatcher",
    "InapplicableError",
    "KeyEquivalenceMatcher",
    "MatchQuality",
    "ProbabilisticAttributeMatcher",
    "ProbabilisticKeyMatcher",
    "ScoredPair",
    "UserSpecifiedMatcher",
    "evaluate",
    "evaluate_pairs",
]

"""Common interface for the Section-2.2 baseline matchers.

Every matcher consumes two relations (already in the unified namespace)
and produces a :class:`BaselineResult`: scored candidate pairs plus the
matcher's self-declared guarantees.  Matchers whose preconditions fail —
key equivalence without a common key — raise :class:`InapplicableError`,
which is itself a result the comparison benches record (applicability is
one of the paper's comparison axes).
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.blocking.base import Blocker, BlockingContext
from repro.core.matching_table import KeyValues
from repro.observability.tracer import NO_OP_TRACER, Tracer
from repro.relational.relation import Relation
from repro.relational.row import Row

__all__ = [
    "InapplicableError",
    "ScoredPair",
    "BaselineResult",
    "BaselineMatcher",
]


class InapplicableError(Exception):
    """The matcher's preconditions do not hold for these relations."""


@dataclass(frozen=True)
class ScoredPair:
    """One candidate match with the matcher's confidence score."""

    r_key: KeyValues
    s_key: KeyValues
    score: float = 1.0

    @property
    def pair(self) -> Tuple[KeyValues, KeyValues]:
        """The (R key, S key) pair."""
        return (self.r_key, self.s_key)


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    matcher_name: str
    pairs: List[ScoredPair]
    guarantees_soundness: bool
    notes: str = ""

    def pair_set(self) -> FrozenSet[Tuple[KeyValues, KeyValues]]:
        """The matched pairs as a set (scores dropped)."""
        return frozenset(p.pair for p in self.pairs)

    def uniqueness_violations(self) -> int:
        """How many keys are matched to more than one counterpart."""
        r_counts = Counter(p.r_key for p in self.pairs)
        s_counts = Counter(p.s_key for p in self.pairs)
        return sum(1 for c in r_counts.values() if c > 1) + sum(
            1 for c in s_counts.values() if c > 1
        )

    def is_sound_output(self) -> bool:
        """True iff the output satisfies the uniqueness constraint."""
        return self.uniqueness_violations() == 0


class BaselineMatcher(abc.ABC):
    """Base class for the five Section-2.2 approaches.

    Matchers that score tuple pairs enumerate them through
    :meth:`_candidate_row_pairs`, which defaults to the exhaustive cross
    product (the historical semantics) but honours an attached
    :class:`~repro.blocking.Blocker` (:meth:`with_blocker`).  Electing a
    pruning blocker trades recall below the similarity threshold for
    scale — e.g. the sorted-neighborhood blocker keeps near-equal rows
    while skipping pairs no window or equality structure connects.
    """

    name: str = "baseline"
    guarantees_soundness: bool = False
    blocker: Optional[Blocker] = None

    @abc.abstractmethod
    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Produce matched pairs for the two (unified) relations."""

    def run(
        self, r: Relation, s: Relation, *, tracer: Optional[Tracer] = None
    ) -> BaselineResult:
        """:meth:`match` under a span, with comparable per-matcher stats.

        Records one ``baseline.match`` span (matcher name, input sizes)
        and counters mirroring the pipeline's own accounting — pairs
        emitted and uniqueness violations, keyed by matcher name — so
        the comparison benches report baselines and the paper's method
        on the same axes.  Inapplicability is counted, then re-raised
        (it is a result, not a failure).
        """
        if tracer is None:
            tracer = NO_OP_TRACER
        with tracer.span(
            "baseline.match", matcher=self.name, r_rows=len(r), s_rows=len(s)
        ) as span:
            self._run_tracer = tracer  # lets _candidate_row_pairs record blocking metrics
            try:
                result = self.match(r, s)
            except InapplicableError:
                if tracer.enabled:
                    tracer.metrics.inc(f"baseline.{self.name}.inapplicable")
                raise
            finally:
                self._run_tracer = None
            span.set("pairs", len(result.pairs))
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.inc(f"baseline.{self.name}.runs")
            metrics.inc(f"baseline.{self.name}.pairs", len(result.pairs))
            metrics.inc(
                f"baseline.{self.name}.uniqueness_violations",
                result.uniqueness_violations(),
            )
        return result

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    _run_tracer: Optional[Tracer] = None

    def with_blocker(self, blocker: Optional[Blocker]) -> "BaselineMatcher":
        """Route pair enumeration through *blocker* (None = cross product)."""
        self.blocker = blocker
        return self

    def _candidate_row_pairs(
        self,
        r: Relation,
        s: Relation,
        *,
        key_attributes: Sequence[str] = (),
    ) -> Iterator[Tuple[Row, Row]]:
        """The (r_row, s_row) pairs this matcher should score.

        Cross product without a blocker; otherwise the attached
        blocker's candidates, blocked on *key_attributes* (the
        attributes the matcher compares).  When called under
        :meth:`run`, blocking metrics land in that run's tracer.
        """
        if self.blocker is None:
            for r_row in r:
                for s_row in s:
                    yield r_row, s_row
            return
        r_rows = list(r)
        s_rows = list(s)
        context = BlockingContext.of(key_attributes)
        candidates = self.blocker.block(
            r_rows, s_rows, context, tracer=self._run_tracer
        )
        for i, j in candidates:
            yield r_rows[i], s_rows[j]

    @staticmethod
    def _r_key_attrs(r: Relation) -> Tuple[str, ...]:
        key = r.schema.primary_key
        return tuple(n for n in r.schema.names if n in key)

    @staticmethod
    def _s_key_attrs(s: Relation) -> Tuple[str, ...]:
        key = s.schema.primary_key
        return tuple(n for n in s.schema.names if n in key)

    def _result(
        self,
        pairs: Iterable[ScoredPair],
        *,
        notes: str = "",
    ) -> BaselineResult:
        return BaselineResult(
            matcher_name=self.name,
            pairs=list(pairs),
            guarantees_soundness=self.guarantees_soundness,
            notes=notes,
        )

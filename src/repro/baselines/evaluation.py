"""Scoring matcher output against ground truth.

The synthetic workloads know which tuple pairs really co-refer, so every
matcher (the paper's technique included) can be scored on:

- **precision** — the paper's soundness axis: the fraction of declared
  matches that are real (a sound technique scores 1.0 by construction);
- **recall** — the completeness axis: the fraction of real matches found;
- **uniqueness violations** — outputs breaking the Section-3.2
  constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.baselines.base import BaselineResult
from repro.core.matching_table import KeyValues

Pair = Tuple[KeyValues, KeyValues]


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall of one matcher run against ground truth."""

    matcher_name: str
    true_positives: int
    false_positives: int
    false_negatives: int
    uniqueness_violations: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 for an empty output (nothing wrong said)."""
        declared = self.true_positives + self.false_positives
        if declared == 0:
            return 1.0
        return self.true_positives / declared

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to find."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 1.0
        return self.true_positives / actual

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)

    def is_sound(self) -> bool:
        """The paper's soundness: no false positives declared."""
        return self.false_positives == 0

    def __str__(self) -> str:
        return (
            f"{self.matcher_name}: precision={self.precision:.3f} "
            f"recall={self.recall:.3f} f1={self.f1:.3f} "
            f"uniqueness_violations={self.uniqueness_violations}"
        )


def evaluate(
    result: BaselineResult,
    truth: Iterable[Pair],
) -> MatchQuality:
    """Score *result* against the ground-truth pair set."""
    truth_set: FrozenSet[Pair] = frozenset(truth)
    declared = result.pair_set()
    tp = len(declared & truth_set)
    return MatchQuality(
        matcher_name=result.matcher_name,
        true_positives=tp,
        false_positives=len(declared) - tp,
        false_negatives=len(truth_set) - tp,
        uniqueness_violations=result.uniqueness_violations(),
    )


def evaluate_pairs(
    matcher_name: str,
    declared: Iterable[Pair],
    truth: Iterable[Pair],
) -> MatchQuality:
    """Score a bare pair set (e.g. the core technique's matching table)."""
    truth_set: FrozenSet[Pair] = frozenset(truth)
    declared_set: FrozenSet[Pair] = frozenset(declared)
    tp = len(declared_set & truth_set)
    from collections import Counter

    r_counts = Counter(pair[0] for pair in declared_set)
    s_counts = Counter(pair[1] for pair in declared_set)
    violations = sum(1 for c in r_counts.values() if c > 1) + sum(
        1 for c in s_counts.values() if c > 1
    )
    return MatchQuality(
        matcher_name=matcher_name,
        true_positives=tp,
        false_positives=len(declared_set) - tp,
        false_negatives=len(truth_set) - tp,
        uniqueness_violations=violations,
    )

"""Baseline 5: heuristic rules (Wang & Madnick).

"Wang and Madnick attacked the problem using a knowledge-based approach.
A set of heuristic rules is used to infer additional information about
the object instances to be matched.  Because the knowledge used is
heuristic in nature, the matching result produced may not be correct."
(Section 2.2.)

A :class:`HeuristicRule` is syntactically an ILFD with a confidence in
(0, 1]; unlike ILFDs, it is *not* assumed valid in the integrated world.
The matcher derives attribute values with the rules (first-match-wins,
like the prototype) and then matches on an extended key, propagating a
pair confidence = product of the confidences of the rules used on either
side.  With all-confidence-1 rules this degenerates to the paper's sound
technique — which is exactly the paper's point: ILFDs are the sound
special case of knowledge-based inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.baselines.base import BaselineMatcher, BaselineResult, ScoredPair
from repro.core.matching_table import key_values
from repro.ilfd.derivation import DerivationEngine, DerivationPolicy
from repro.ilfd.ilfd import ILFD, ILFDSet
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.row import Row


@dataclass(frozen=True)
class HeuristicRule:
    """An ILFD-shaped inference with a confidence < certainty allowed."""

    ilfd: ILFD
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0, 1], got {self.confidence}"
            )

    @classmethod
    def of(
        cls,
        antecedent: Mapping[str, Any],
        consequent: Mapping[str, Any],
        confidence: float = 1.0,
        *,
        name: str = "",
    ) -> "HeuristicRule":
        """Build from assignment dicts, like :meth:`ILFD.of`."""
        return cls(ILFD(antecedent, consequent, name=name), confidence)


class HeuristicRuleMatcher(BaselineMatcher):
    """Extended-key matching over heuristically derived values.

    Parameters
    ----------
    rules:
        The heuristic rules, in priority order (first match wins).
    extended_key:
        The attributes to match on once values are derived.
    min_confidence:
        Drop matches whose combined confidence falls below this bound.
    """

    name = "heuristic-rules"
    guarantees_soundness = False

    def __init__(
        self,
        rules: Iterable[HeuristicRule],
        extended_key: Sequence[str],
        *,
        min_confidence: float = 0.0,
    ) -> None:
        self._rules = list(rules)
        self._key = list(extended_key)
        self._min_confidence = min_confidence
        self._engine = DerivationEngine(
            ILFDSet(rule.ilfd for rule in self._rules),
            policy=DerivationPolicy.FIRST_MATCH,
        )
        self._confidence_by_ilfd: Dict[ILFD, float] = {}
        for rule in self._rules:
            for part in rule.ilfd.split():
                self._confidence_by_ilfd[part] = rule.confidence

    def _extend(self, row: Row) -> Tuple[Row, float]:
        result = self._engine.extend_row(row, self._key)
        confidence = 1.0
        for fired in result.fired:
            confidence *= self._confidence_by_ilfd.get(fired, 1.0)
        return result.row, confidence

    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Derive, then match on fully non-NULL equal extended keys."""
        r_key_attrs = self._r_key_attrs(r)
        s_key_attrs = self._s_key_attrs(s)
        extended_s: List[Tuple[Row, float]] = [self._extend(row) for row in s]
        pairs: List[ScoredPair] = []
        for r_row in r:
            r_ext, r_conf = self._extend(r_row)
            r_values = r_ext.values_for(self._key)
            if any(is_null(v) for v in r_values):
                continue
            for s_ext, s_conf in extended_s:
                s_values = s_ext.values_for(self._key)
                if any(is_null(v) for v in s_values):
                    continue
                if r_values != s_values:
                    continue
                confidence = r_conf * s_conf
                if confidence >= self._min_confidence:
                    pairs.append(
                        ScoredPair(
                            key_values(r_ext, r_key_attrs),
                            key_values(s_ext, s_key_attrs),
                            score=confidence,
                        )
                    )
        return self._result(
            pairs,
            notes=(
                f"{len(self._rules)} heuristic rules, key {self._key}, "
                f"min confidence {self._min_confidence}"
            ),
        )

"""Baseline 4: probabilistic attribute equivalence (Chatterjee & Segev).

"Chatterjee and Segev proposed the use of all common attributes between
two relations to determine entity equivalence.  For each pair of records
from two relations, a value called comparison value is assigned based on
a probabilistic model.  Nevertheless, in Section 2.1, we demonstrate
that comparing common attribute values does not necessarily produce
correct matching results." (Section 2.2.)

The comparison value here is a weighted agreement score over the common
attributes: agreeing non-NULL values contribute their weight, and
disagreeing values contribute nothing.  Pairs whose normalised score
meets the threshold match; an optional one-to-one assignment keeps only
each tuple's best partner (greedy by score), which is how such systems
avoid the most blatant uniqueness violations — yet the Figure-2 bench
still shows the approach mis-matching homonyms with identical attributes.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.baselines.base import BaselineMatcher, BaselineResult, InapplicableError, ScoredPair
from repro.core.matching_table import key_values
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.row import Row


class ProbabilisticAttributeMatcher(BaselineMatcher):
    """Weighted agreement over all common attributes.

    Parameters
    ----------
    threshold:
        Minimum normalised comparison value for a match (default 0.8).
    weights:
        Per-attribute weights (default 1.0 each).
    one_to_one:
        Greedily keep each tuple's single best partner (default True).
    """

    name = "probabilistic-attribute"
    guarantees_soundness = False

    def __init__(
        self,
        threshold: float = 0.8,
        weights: Optional[Mapping[str, float]] = None,
        one_to_one: bool = True,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = threshold
        self._weights = dict(weights or {})
        self._one_to_one = one_to_one

    def comparison_value(
        self, r_row: Row, s_row: Row, attributes: Sequence[str]
    ) -> float:
        """The normalised weighted agreement over *attributes*.

        Attributes where either side is NULL are excluded from both the
        numerator and the denominator (no evidence either way).
        """
        total = 0.0
        agreed = 0.0
        for attr in attributes:
            r_value, s_value = r_row[attr], s_row[attr]
            if is_null(r_value) or is_null(s_value):
                continue
            weight = self._weights.get(attr, 1.0)
            total += weight
            if r_value == s_value:
                agreed += weight
        if total == 0.0:
            return 0.0
        return agreed / total

    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Score all pairs over the common attributes; threshold; assign."""
        attributes = [n for n in r.schema.names if n in s.schema]
        if not attributes:
            raise InapplicableError(
                "relations share no common attributes; attribute "
                "equivalence is inapplicable"
            )
        r_key_attrs = self._r_key_attrs(r)
        s_key_attrs = self._s_key_attrs(s)
        candidates: List[ScoredPair] = []
        for r_row, s_row in self._candidate_row_pairs(
            r, s, key_attributes=attributes
        ):
            value = self.comparison_value(r_row, s_row, attributes)
            if value >= self._threshold:
                candidates.append(
                    ScoredPair(
                        key_values(r_row, r_key_attrs),
                        key_values(s_row, s_key_attrs),
                        score=value,
                    )
                )
        if self._one_to_one:
            candidates = self._assign(candidates)
        return self._result(
            candidates,
            notes=(
                f"threshold {self._threshold} over {attributes}; "
                f"one_to_one={self._one_to_one}"
            ),
        )

    @staticmethod
    def _assign(candidates: List[ScoredPair]) -> List[ScoredPair]:
        """Greedy best-first one-to-one assignment."""
        chosen: List[ScoredPair] = []
        used_r: set = set()
        used_s: set = set()
        for pair in sorted(candidates, key=lambda p: (-p.score, p.r_key, p.s_key)):
            if pair.r_key in used_r or pair.s_key in used_s:
                continue
            used_r.add(pair.r_key)
            used_s.add(pair.s_key)
            chosen.append(pair)
        return chosen

"""Baseline 2: user-specified equivalence (Pegasus).

"This approach requires the user to specify equivalence between object
instances, e.g., as a table that maps local object ids to global object
ids. … Because the matching table can be very large, this approach can
potentially be extremely cumbersome.  Nevertheless, it is a general
approach and can handle synonym and homonym problems." (Section 2.2.)

The matcher is a thin adapter around a user-supplied pairing; it is sound
exactly as sound as its input (we take the user at their word, matching
the paper's framing), and :meth:`UserSpecifiedMatcher.effort` exposes the
"cumbersome" axis — the number of assertions the user had to make.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Tuple

from repro.baselines.base import BaselineMatcher, BaselineResult, InapplicableError, ScoredPair
from repro.core.matching_table import key_values
from repro.relational.relation import Relation


class UserSpecifiedMatcher(BaselineMatcher):
    """Match exactly the user-asserted pairs.

    Parameters
    ----------
    assertions:
        Iterable of ``(r_key_mapping, s_key_mapping)`` pairs, each
        identifying one tuple of each relation by (a superset of) its key
        attributes.
    """

    name = "user-specified"
    guarantees_soundness = True  # trusted input, per the paper's framing

    def __init__(
        self,
        assertions: Iterable[Tuple[Mapping[str, Any], Mapping[str, Any]]],
    ) -> None:
        self._assertions = list(assertions)

    def effort(self) -> int:
        """How many manual assertions this matching required."""
        return len(self._assertions)

    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Resolve each assertion against the relations."""
        pairs: List[ScoredPair] = []
        r_key_attrs = self._r_key_attrs(r)
        s_key_attrs = self._s_key_attrs(s)
        for r_keys, s_keys in self._assertions:
            r_row = r.lookup(dict(r_keys))
            s_row = s.lookup(dict(s_keys))
            if r_row is None or s_row is None:
                raise InapplicableError(
                    f"assertion references unknown tuples: {dict(r_keys)!r} / "
                    f"{dict(s_keys)!r}"
                )
            pairs.append(
                ScoredPair(
                    key_values(r_row, r_key_attrs),
                    key_values(s_row, s_key_attrs),
                )
            )
        return self._result(pairs, notes=f"{len(pairs)} manual assertions")

"""Baseline 3: probabilistic key equivalence (Pu).

"Instead of insisting on full key equivalence, Pu suggested matching
object instances using only a portion of the key values in the
restricted domain.  The name matching problem … has been addressed by
matching the subfields of names.  If most of the subfields in two given
names match, the names are considered to be identical. … it is
applicable only when common key exists between relations.  The
probabilistic nature of matching may also admit erroneous matching."
(Section 2.2.)

Key values are tokenised into subfields; a pair's score is the Jaccard
overlap of the subfield multisets across all common key attributes, and
pairs scoring at or above the threshold match.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineMatcher, BaselineResult, InapplicableError, ScoredPair
from repro.core.matching_table import key_values
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.row import Row

_SUBFIELD_RE = re.compile(r"[A-Za-z0-9]+")


def default_tokenizer(value: object) -> Tuple[str, ...]:
    """Split a value into lowercase alphanumeric subfields."""
    return tuple(token.lower() for token in _SUBFIELD_RE.findall(str(value)))


class ProbabilisticKeyMatcher(BaselineMatcher):
    """Subfield matching over the common key attributes.

    Parameters
    ----------
    threshold:
        Minimum subfield-overlap score (0..1] for a match; "most of the
        subfields" suggests a majority, so the default is 0.5.
    common_attributes:
        The key attributes to compare; defaults to the key attributes the
        two relations share (raises when there are none — like full key
        equivalence, the technique needs a common key).
    tokenizer:
        Value → subfields function.
    """

    name = "probabilistic-key"
    guarantees_soundness = False

    def __init__(
        self,
        threshold: float = 0.5,
        common_attributes: Optional[Sequence[str]] = None,
        tokenizer: Callable[[object], Tuple[str, ...]] = default_tokenizer,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = threshold
        self._common = tuple(common_attributes) if common_attributes else None
        self._tokenizer = tokenizer

    def _common_key_attributes(self, r: Relation, s: Relation) -> Tuple[str, ...]:
        if self._common is not None:
            return self._common
        r_key_attrs = set().union(*r.schema.keys)
        s_key_attrs = set().union(*s.schema.keys)
        shared = tuple(sorted(r_key_attrs & s_key_attrs))
        if not shared:
            raise InapplicableError(
                "no common key attributes; probabilistic key equivalence "
                "is inapplicable"
            )
        return shared

    def score(self, r_row: Row, s_row: Row, attributes: Sequence[str]) -> float:
        """Multiset-Jaccard overlap of subfields across *attributes*."""
        r_tokens: Counter = Counter()
        s_tokens: Counter = Counter()
        for attr in attributes:
            r_value = r_row[attr]
            s_value = s_row[attr]
            if not is_null(r_value):
                r_tokens.update(self._tokenizer(r_value))
            if not is_null(s_value):
                s_tokens.update(self._tokenizer(s_value))
        if not r_tokens or not s_tokens:
            return 0.0
        intersection = sum((r_tokens & s_tokens).values())
        union = sum((r_tokens | s_tokens).values())
        return intersection / union

    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Score all pairs; keep those at or above the threshold."""
        attributes = self._common_key_attributes(r, s)
        for attr in attributes:
            r.schema.attribute(attr)
            s.schema.attribute(attr)
        pairs: List[ScoredPair] = []
        r_key_attrs = self._r_key_attrs(r)
        s_key_attrs = self._s_key_attrs(s)
        for r_row, s_row in self._candidate_row_pairs(
            r, s, key_attributes=list(attributes)
        ):
            value = self.score(r_row, s_row, attributes)
            if value >= self._threshold:
                pairs.append(
                    ScoredPair(
                        key_values(r_row, r_key_attrs),
                        key_values(s_row, s_key_attrs),
                        score=value,
                    )
                )
        return self._result(
            pairs,
            notes=f"threshold {self._threshold} over {list(attributes)}",
        )

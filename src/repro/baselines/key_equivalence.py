"""Baseline 1: entity identification by key equivalence (Multibase).

"Many approaches assume some common key exists between relations from
different databases modeling the same entity type. … This approach,
however, is limited because the relations may have no common key, even
though they might share some common key attributes, as shown in
Example 1." (Section 2.2.)

The matcher requires a common candidate key (an attribute set that is a
candidate key of *both* unified relations) and equates tuples with equal
key values.  Its soundness additionally rests on the unstated assumption
Section 4.1 spells out — "the (common) candidate key continues to remain
a key for the unionized set of real-world entities" — which instance
data cannot certify, so ``guarantees_soundness`` is False and the
Figure-2 bench shows it mis-matching homonyms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.baselines.base import BaselineMatcher, BaselineResult, InapplicableError, ScoredPair
from repro.core.matching_table import key_values
from repro.relational.nulls import is_null
from repro.relational.relation import Relation


class KeyEquivalenceMatcher(BaselineMatcher):
    """Match tuples whose common candidate-key values are equal.

    Parameters
    ----------
    key:
        The common key to use; defaults to any candidate key declared by
        both relations (raises :class:`InapplicableError` when none
        exists — the Example-1 situation).
    """

    name = "key-equivalence"
    guarantees_soundness = False

    def __init__(self, key: Optional[Tuple[str, ...]] = None) -> None:
        self._key = tuple(key) if key is not None else None

    def common_key(self, r: Relation, s: Relation) -> FrozenSet[str]:
        """The common candidate key used for matching."""
        if self._key is not None:
            wanted = frozenset(self._key)
            if wanted not in r.schema.keys or wanted not in s.schema.keys:
                raise InapplicableError(
                    f"{sorted(wanted)} is not a candidate key of both relations"
                )
            return wanted
        shared = set(r.schema.keys) & set(s.schema.keys)
        if not shared:
            raise InapplicableError(
                "relations share no common candidate key (the paper's "
                "Example-1 situation); key equivalence is inapplicable"
            )
        return min(shared, key=lambda k: (len(k), sorted(k)))

    def match(self, r: Relation, s: Relation) -> BaselineResult:
        """Equate tuples with identical non-NULL common-key values."""
        key = sorted(self.common_key(r, s))
        index: Dict[Tuple, List] = {}
        for s_row in s:
            values = s_row.values_for(key)
            if any(is_null(v) for v in values):
                continue
            index.setdefault(values, []).append(s_row)
        pairs: List[ScoredPair] = []
        r_key_attrs = self._r_key_attrs(r)
        s_key_attrs = self._s_key_attrs(s)
        for r_row in r:
            values = r_row.values_for(key)
            if any(is_null(v) for v in values):
                continue
            for s_row in index.get(values, ()):  # all equal-key partners
                pairs.append(
                    ScoredPair(
                        key_values(r_row, r_key_attrs),
                        key_values(s_row, s_key_attrs),
                    )
                )
        return self._result(pairs, notes=f"common key {key}")
